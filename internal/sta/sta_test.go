package sta

import (
	"math"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/rctree"
	"smartndr/internal/tech"
)

// buffered pair: root (with driver) at (500,0) joining sinks at (0,0) and
// (1000,0), default rule everywhere.
func bufferedPair(te *tech.Tech, lib *cell.Library) *ctree.Tree {
	sinks := []ctree.Sink{
		{Name: "s0", Loc: geom.Point{X: 0, Y: 0}, Cap: 2e-15},
		{Name: "s1", Loc: geom.Point{X: 1000, Y: 0}, Cap: 2e-15},
	}
	t := ctree.NewTree(sinks, geom.Point{X: 500, Y: 500})
	l0 := t.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{ctree.NoNode, ctree.NoNode}, SinkIdx: 0, Loc: sinks[0].Loc, EdgeLen: 500, BufIdx: ctree.NoBuf})
	l1 := t.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{ctree.NoNode, ctree.NoNode}, SinkIdx: 1, Loc: sinks[1].Loc, EdgeLen: 500, BufIdx: ctree.NoBuf})
	r := t.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{l0, l1}, SinkIdx: ctree.NoSink, Loc: geom.Point{X: 500, Y: 0}, BufIdx: 2})
	t.Nodes[l0].Parent = r
	t.Nodes[l1].Parent = r
	t.Root = r
	t.SetAllRules(te.DefaultRule)
	return t
}

func TestAnalyzePairMatchesHandElmore(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := bufferedPair(te, lib)
	const inSlew = 40e-12
	res, err := Analyze(tr, te, lib, inSlew)
	if err != nil {
		t.Fatal(err)
	}
	r := te.WireR(500, te.DefaultRule)
	c := te.WireC(500, te.DefaultRule)
	// Stage load: two edges + two sinks.
	wantLoad := 2*c + 2*2e-15
	if got := res.StageCap[tr.Root]; math.Abs(got-wantLoad) > 1e-20 {
		t.Errorf("StageCap = %g, want %g", got, wantLoad)
	}
	b := &lib.Buffers[2]
	wantBufDelay := b.DelayAt(inSlew, wantLoad)
	wantElm := r * (c/2 + 2e-15)
	wantArr := wantBufDelay + wantElm
	for _, v := range []int{0, 1} {
		if got := res.Arrival[v]; math.Abs(got-wantArr) > wantArr*1e-9 {
			t.Errorf("Arrival[%d] = %g, want %g", v, got, wantArr)
		}
		wantSlew := math.Hypot(b.OutSlewAt(inSlew, wantLoad), rctree.Ln9*wantElm)
		if got := res.Slew[v]; math.Abs(got-wantSlew) > wantSlew*1e-9 {
			t.Errorf("Slew[%d] = %g, want %g", v, got, wantSlew)
		}
	}
	if s := res.Skew(); s > 1e-18 {
		t.Errorf("symmetric pair skew = %g", s)
	}
	if res.BufferCount != 1 {
		t.Errorf("BufferCount = %d", res.BufferCount)
	}
	// Cap inventory.
	if math.Abs(res.WireCap-2*c) > 1e-20 {
		t.Errorf("WireCap = %g", res.WireCap)
	}
	if math.Abs(res.SinkCap-4e-15) > 1e-20 {
		t.Errorf("SinkCap = %g", res.SinkCap)
	}
	if res.BufInCap != b.InputCap || res.BufIntCap != b.InternalCap {
		t.Error("buffer cap inventory wrong")
	}
	if got := res.TotalSwitchedCap(); math.Abs(got-(2*c+4e-15+b.InputCap+b.InternalCap)) > 1e-20 {
		t.Errorf("TotalSwitchedCap = %g", got)
	}
}

func TestAnalyzeAsymmetricSkew(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := bufferedPair(te, lib)
	// Lengthen one branch: skew must appear and equal the Elmore delta.
	tr.Nodes[0].EdgeLen = 800
	res, err := Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skew() <= 0 {
		t.Error("asymmetric tree must have skew")
	}
	if res.Arrival[0] <= res.Arrival[1] {
		t.Error("longer branch must arrive later")
	}
}

func TestAnalyzeNDRRuleChangesTiming(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := bufferedPair(te, lib)
	// A strong driver keeps the buffer's own output slew small, so the
	// comparison isolates the wire: NDR must improve the wire-dominated
	// worst slew despite its higher load.
	tr.Nodes[tr.Root].BufIdx = len(lib.Buffers) - 1
	base, err := Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetAllRules(te.BlanketRule)
	ndr, err := Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if ndr.WireCap <= base.WireCap {
		t.Error("blanket NDR must raise wire cap")
	}
	w0, _ := base.WorstSlew()
	w1, _ := ndr.WorstSlew()
	if w1 >= w0 {
		t.Errorf("NDR must improve worst slew: %g vs %g", w1, w0)
	}
}

func TestAnalyzeTwoStage(t *testing.T) {
	// Root driver → wire → mid buffer → wire → sink. Checks stage
	// decomposition: mid buffer input is an endpoint of stage 1 and the
	// driver of stage 2.
	te := tech.Tech45()
	lib := cell.Default45()
	sinks := []ctree.Sink{{Name: "s", Loc: geom.Point{X: 1000, Y: 0}, Cap: 3e-15}}
	tr := ctree.NewTree(sinks, geom.Point{})
	leaf := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{ctree.NoNode, ctree.NoNode}, SinkIdx: 0, Loc: sinks[0].Loc, EdgeLen: 500, BufIdx: ctree.NoBuf})
	mid := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{leaf, ctree.NoNode}, SinkIdx: ctree.NoSink, Loc: geom.Point{X: 500, Y: 0}, EdgeLen: 500, BufIdx: 1})
	root := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{mid, ctree.NoNode}, SinkIdx: ctree.NoSink, Loc: geom.Point{X: 0, Y: 0}, BufIdx: 3})
	tr.Nodes[leaf].Parent = mid
	tr.Nodes[mid].Parent = root
	tr.Root = root
	tr.SetAllRules(te.DefaultRule)

	res, err := Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	r := te.WireR(500, te.DefaultRule)
	c := te.WireC(500, te.DefaultRule)
	bRoot := &lib.Buffers[3]
	bMid := &lib.Buffers[1]
	// Stage 1: root buffer drives wire + mid input.
	load1 := c + bMid.InputCap
	elmMid := r * (c/2 + bMid.InputCap)
	wantArrMid := bRoot.DelayAt(40e-12, load1) + elmMid
	if math.Abs(res.Arrival[mid]-wantArrMid) > wantArrMid*1e-9 {
		t.Errorf("Arrival[mid] = %g, want %g", res.Arrival[mid], wantArrMid)
	}
	// Stage 2 starts at the mid buffer with the stage-1 slew at its input.
	slewMid := res.Slew[mid]
	load2 := c + 3e-15
	elmSink := r * (c/2 + 3e-15)
	wantArrSink := wantArrMid + bMid.DelayAt(slewMid, load2) + elmSink
	if math.Abs(res.Arrival[leaf]-wantArrSink) > wantArrSink*1e-9 {
		t.Errorf("Arrival[sink] = %g, want %g", res.Arrival[leaf], wantArrSink)
	}
	if res.BufferCount != 2 {
		t.Errorf("BufferCount = %d", res.BufferCount)
	}
	if got := res.MaxSinkArrival(); math.Abs(got-res.Arrival[leaf]) > 1e-18 {
		t.Errorf("MaxSinkArrival = %g", got)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := bufferedPair(te, lib)
	if _, err := Analyze(tr, te, lib, 0); err == nil {
		t.Error("zero input slew must fail")
	}
	tr.Nodes[tr.Root].BufIdx = ctree.NoBuf
	if _, err := Analyze(tr, te, lib, 40e-12); err == nil {
		t.Error("unbuffered root must fail")
	}
	tr2 := bufferedPair(te, lib)
	tr2.Nodes[0].Rule = 99
	if _, err := Analyze(tr2, te, lib, 40e-12); err == nil {
		t.Error("out-of-range rule must fail")
	}
	tr3 := ctree.NewTree([]ctree.Sink{{Cap: 1e-15}}, geom.Point{})
	if _, err := Analyze(tr3, te, lib, 40e-12); err == nil {
		t.Error("rootless tree must fail")
	}
}

func TestSlewViolations(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := bufferedPair(te, lib)
	res, err := Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	worst, at := res.WorstSlew()
	if worst <= 0 || at < 0 {
		t.Fatalf("WorstSlew = %g @%d", worst, at)
	}
	if res.SlewViolations(worst+1e-15) != 0 {
		t.Error("no violations above the worst slew")
	}
	if res.SlewViolations(worst/2) == 0 {
		t.Error("half the worst slew must be violated somewhere")
	}
}

func TestSinkArrivals(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := bufferedPair(te, lib)
	res, err := Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	arr := res.SinkArrivals(tr)
	if len(arr) != 2 || arr[0] <= 0 || arr[1] <= 0 {
		t.Errorf("SinkArrivals = %v", arr)
	}
}
