package sta_test

import (
	"math"
	"math/rand"
	"testing"

	"smartndr/internal/sta"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/cts"
	"smartndr/internal/geom"
	"smartndr/internal/tech"
)

func synthTree(t testing.TB, n int, seed int64, te *tech.Tech, lib *cell.Library) *ctree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sinks := make([]ctree.Sink, n)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Loc: geom.Point{X: rng.Float64() * 1500, Y: rng.Float64() * 1500},
			Cap: (1 + rng.Float64()) * 1e-15,
		}
	}
	res, err := cts.Build(sinks, geom.Point{X: 750, Y: 750}, te, lib, cts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Tree
}

// TestAnalyzerMatchesAnalyze: repeated Analyzer calls — including across
// different trees — must agree exactly with fresh one-shot Analyze.
func TestAnalyzerMatchesAnalyze(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	trees := []*ctree.Tree{
		synthTree(t, 60, 1, te, lib),
		synthTree(t, 100, 2, te, lib), // bigger: buffers must grow
		synthTree(t, 30, 3, te, lib),  // smaller: buffers must shrink cleanly
	}
	an := sta.NewAnalyzer(te, lib)
	for round := 0; round < 2; round++ {
		for ti, tree := range trees {
			want, err := sta.Analyze(tree, te, lib, 40e-12)
			if err != nil {
				t.Fatal(err)
			}
			got, err := an.Analyze(tree, 40e-12, nil)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want.Arrival {
				if got.Arrival[v] != want.Arrival[v] || got.Slew[v] != want.Slew[v] {
					t.Fatalf("round %d tree %d node %d: reused analyzer diverges", round, ti, v)
				}
			}
			if got.Skew() != want.Skew() || got.TotalSwitchedCap() != want.TotalSwitchedCap() {
				t.Fatalf("round %d tree %d: summary diverges", round, ti)
			}
			if got.BufferCount != want.BufferCount || len(got.Drivers) != len(want.Drivers) {
				t.Fatalf("round %d tree %d: stale inventory: %d bufs / %d stages, want %d / %d",
					round, ti, got.BufferCount, len(got.Drivers), want.BufferCount, len(want.Drivers))
			}
			if got.MaxSinkArrival() != want.MaxSinkArrival() {
				t.Fatalf("round %d tree %d: sink set stale", round, ti)
			}
		}
	}
}

// TestAnalyzerWithOverrides: the override path must behave identically
// through the reusing analyzer.
func TestAnalyzerWithOverrides(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 50, 4, te, lib)
	n := len(tree.Nodes)
	scale := make([]float64, n)
	for i := range scale {
		scale[i] = 1.1
	}
	ov := &sta.Overrides{BufScale: scale}
	want, err := sta.AnalyzeOv(tree, te, lib, 40e-12, ov)
	if err != nil {
		t.Fatal(err)
	}
	an := sta.NewAnalyzer(te, lib)
	// A nominal call first, so stale override state would be detectable.
	if _, err := an.Analyze(tree, 40e-12, nil); err != nil {
		t.Fatal(err)
	}
	got, err := an.Analyze(tree, 40e-12, ov)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxSinkArrival() != want.MaxSinkArrival() || got.Skew() != want.Skew() {
		t.Error("override analysis diverges through the analyzer")
	}
	if got.MaxSinkArrival() <= 0 {
		t.Error("implausible arrival")
	}
}

// TestAnalyzerSteadyStateAllocs: after the first sizing call, repeated
// analyses of the same tree must not allocate.
func TestAnalyzerSteadyStateAllocs(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 80, 5, te, lib)
	an := sta.NewAnalyzer(te, lib)
	if _, err := an.Analyze(tree, 40e-12, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := an.Analyze(tree, 40e-12, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("steady-state Analyze allocates %.1f objects/run, want ≤ 2", allocs)
	}
}

func TestAnalyzerErrors(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 20, 6, te, lib)
	an := sta.NewAnalyzer(te, lib)
	if _, err := an.Analyze(tree, 0, nil); err == nil {
		t.Error("zero input slew must fail")
	}
	bad := tree.Clone()
	bad.Nodes[1].Rule = 99
	if _, err := an.Analyze(bad, 40e-12, nil); err == nil {
		t.Error("out-of-range rule must fail")
	}
	// The analyzer must recover from an error and produce correct results.
	got, err := an.Analyze(tree, 40e-12, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sta.Analyze(tree, te, lib, 40e-12)
	if math.Abs(got.Skew()-want.Skew()) > 0 {
		t.Error("post-error analysis diverges")
	}
}
