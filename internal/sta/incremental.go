package sta

import (
	"container/heap"
	"fmt"
	"math"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/rctree"
	"smartndr/internal/tech"
)

// Incremental is an Analyzer with a dirty-region update path: callers
// report tree edits through Touch, and the next Analyze recomputes only
// the stages those edits can reach instead of re-walking the whole tree.
//
// The contract is exactness, not approximation: an incremental Analyze
// returns results bitwise identical to a from-scratch Analyze of the same
// tree. That is what lets the optimizer flip between incremental and full
// analysis without changing a single decision (see the invariance tests
// in internal/core). The engine achieves it by re-running the *same*
// arithmetic the full pass runs, in the same per-node order, over the
// dirty region only:
//
//   - a rule or edge-length edit re-derives that edge's parasitics and
//     marks its owning stage cap-dirty; the stage's downstream caps and
//     StageCap are rebuilt with the full pass's accumulation order
//     (capacitive effects never escape a stage — buffer input pins
//     terminate the accumulation, so one bottom-up stage rebuild is the
//     whole upstream chain);
//   - a sink pin-cap edit on an unbuffered leaf updates the endpoint cap
//     the leaf presents to its stage and marks that stage cap-dirty,
//     exactly like a wire edit (design sessions edit sink caps in place);
//   - a buffer resize updates the endpoint cap it presents to its parent
//     stage (cap-dirty) and marks its own stage delay-dirty;
//   - timing then re-propagates top-down from the dirty stages, in
//     stage-depth order, pruning at every buffered endpoint whose
//     (arrival, slew) came out bitwise unchanged;
//   - a stage reached only by an arrival shift (input slew, load, and
//     buffer all unchanged) takes the arrival-only fast path: its cached
//     driver delay is reused and each node gets one add
//     (Arrival = stageOutArr + elm), skipping the NLDM table lookups and
//     the slew hypot entirely. This is the "subtree offset patch" of the
//     dirty-region design, realized as a recompute from the cached delay
//     rather than a float offset-add so the result stays bitwise exact.
//
// When the dirty region is too large for the update to win — the visit
// budget, a structural edit (buffer added/removed), a new tree, or a
// changed input slew — Analyze falls back to one full pass, which also
// refreshes every cache. Zero pending edits return the cached Result for
// free.
//
// An Incremental is not safe for concurrent use.
type Incremental struct {
	an  *Analyzer
	te  *tech.Tech
	lib *cell.Library

	// crossCheck re-runs a full analysis after every incremental update
	// and verifies the two agree (debug mode; see SetCrossCheck).
	crossCheck bool
	checker    *Analyzer

	disabled bool
	valid    bool
	tree     *ctree.Tree
	n        int
	lastSlew float64

	bufIdx    []int // BufIdx snapshot at last analysis
	depth     []int // node depth (heap key for stage ordering)
	stageSize []int // per driver: node count of its stage

	pending     []int
	pendingMark []bool

	// Per-update scratch, cleared after every update.
	capDirty   []bool
	capList    []int
	delayDirty []bool
	delayList  []int
	mode       []uint8 // per driver: scheduled timing mode
	schedList  []int
	driverHeap driverHeap
	walk       []int // stage DFS stack
	stageBuf   []int // gathered stage nodes (cap phase)

	stats IncStats
}

// Timing modes a stage can be scheduled with. A stage scheduled both ways
// keeps the stronger (full) mode.
const (
	modeNone uint8 = iota
	modeArrival
	modeFull
)

// IncStats counts what the incremental layer did. NodeVisits is the STA
// cost metric: one unit per node touched by a tree-traversal pass — a
// full analysis costs 2n (cap pass + timing pass), an incremental update
// costs the dirty-region stage walks it actually performs (arrival-only
// visits included). Flat inventory re-sums (one add per node, no
// traversal) are not counted; docs/performance.md records the definition.
type IncStats struct {
	FullRuns   int   // from-scratch analyses (first run, invalidation, fallback)
	IncRuns    int   // dirty-region updates that committed
	CachedRuns int   // zero-edit analyses served from cache
	Fallbacks  int   // updates abandoned for a full run
	NodeVisits int64 // total node visits under the metric above
}

// NewIncremental returns an incremental analyzer for the technology and
// library. The first Analyze runs full; subsequent ones are incremental
// over the edits reported via Touch.
func NewIncremental(te *tech.Tech, lib *cell.Library) *Incremental {
	return &Incremental{an: NewAnalyzer(te, lib), te: te, lib: lib}
}

// Disable pins the analyzer to the always-full path: every Analyze runs a
// from-scratch pass (still allocation-free across calls). This is the
// reference mode the differential and invariance tests compare against.
func (inc *Incremental) Disable() {
	inc.disabled = true
	inc.valid = false
}

// SetCrossCheck toggles debug cross-checking: after every committed
// incremental update, a from-scratch analysis runs on a shadow analyzer
// and the two results are compared field by field (1e-12 absolute).
// Mismatches surface as Analyze errors. Expensive — tests only.
func (inc *Incremental) SetCrossCheck(on bool) {
	inc.crossCheck = on
	if on && inc.checker == nil {
		inc.checker = NewAnalyzer(inc.te, inc.lib)
	}
}

// Stats returns the run counters accumulated so far.
func (inc *Incremental) Stats() IncStats { return inc.stats }

// Invalidate drops all cached state; the next Analyze runs full. Call it
// after edits that cannot be attributed to specific nodes.
func (inc *Incremental) Invalidate() {
	inc.valid = false
	inc.clearPending()
}

// Touch reports that node v was edited (rule, edge length, buffer
// index, or — for an unbuffered leaf — its sink's pin cap) since the
// last Analyze. Touching an unedited node is harmless;
// out-of-range nodes invalidate the cache (the tree evidently changed
// shape). Reverted edits need no Touch if the value is back to what the
// last analysis saw — Touch-then-revert is also fine, the update just
// finds nothing dirty.
func (inc *Incremental) Touch(v int) {
	if !inc.valid {
		return
	}
	if v < 0 || v >= inc.n {
		inc.Invalidate()
		return
	}
	if !inc.pendingMark[v] {
		inc.pendingMark[v] = true
		inc.pending = append(inc.pending, v)
	}
}

// Analyze evaluates the tree, incrementally when possible. The returned
// Result is owned by the analyzer and overwritten by the next call, like
// Analyzer.Analyze. Overrides are not supported on the incremental path;
// use a plain Analyzer for corner or variation analysis.
func (inc *Incremental) Analyze(t *ctree.Tree, inSlew float64) (*Result, error) {
	if inc.disabled {
		res, err := inc.an.analyze(t, inSlew, nil, nil)
		if err == nil {
			inc.stats.FullRuns++
			inc.stats.NodeVisits += int64(2 * len(t.Nodes))
		}
		return res, err
	}
	if !inc.valid || t != inc.tree || len(t.Nodes) != inc.n || inSlew != inc.lastSlew {
		return inc.full(t, inSlew)
	}
	if len(inc.pending) == 0 {
		inc.stats.CachedRuns++
		return &inc.an.res, nil
	}
	if !inc.update(t) {
		inc.stats.Fallbacks++
		return inc.full(t, inSlew)
	}
	inc.stats.IncRuns++
	inc.clearPending()
	if inc.crossCheck {
		if err := inc.runCrossCheck(t, inSlew); err != nil {
			inc.valid = false
			return nil, err
		}
	}
	return &inc.an.res, nil
}

// full runs a from-scratch analysis and refreshes every incremental cache.
func (inc *Incremental) full(t *ctree.Tree, inSlew float64) (*Result, error) {
	res, err := inc.an.analyze(t, inSlew, nil, nil)
	if err != nil {
		inc.valid = false
		inc.clearPending()
		return nil, err
	}
	inc.stats.FullRuns++
	inc.stats.NodeVisits += int64(2 * len(t.Nodes))
	inc.capture(t, inSlew)
	return res, nil
}

// capture snapshots the per-node state the update path diffs against.
func (inc *Incremental) capture(t *ctree.Tree, inSlew float64) {
	inc.clearPending() // before resizing: marks may index the old tree
	n := len(t.Nodes)
	inc.tree, inc.n, inc.lastSlew = t, n, inSlew
	if cap(inc.bufIdx) < n {
		inc.bufIdx = make([]int, n)
		inc.depth = make([]int, n)
		inc.stageSize = make([]int, n)
		inc.pendingMark = make([]bool, n)
		inc.capDirty = make([]bool, n)
		inc.delayDirty = make([]bool, n)
		inc.mode = make([]uint8, n)
	} else {
		inc.bufIdx = inc.bufIdx[:n]
		inc.depth = inc.depth[:n]
		inc.stageSize = inc.stageSize[:n]
		inc.pendingMark = inc.pendingMark[:n]
		inc.capDirty = inc.capDirty[:n]
		inc.delayDirty = inc.delayDirty[:n]
		inc.mode = inc.mode[:n]
	}
	drv := inc.an.drv
	for i := range t.Nodes {
		inc.bufIdx[i] = t.Nodes[i].BufIdx
		inc.stageSize[i] = 0
	}
	// Depth needs parents before children; node order in a ctree is not
	// guaranteed topological, so walk from the root.
	w := append(inc.walk[:0], t.Root)
	inc.depth[t.Root] = 0
	for len(w) > 0 {
		v := w[len(w)-1]
		w = w[:len(w)-1]
		for _, k := range t.Nodes[v].Kids {
			if k != ctree.NoNode {
				inc.depth[k] = inc.depth[v] + 1
				w = append(w, k)
			}
		}
	}
	inc.walk = w[:0]
	for i := range t.Nodes {
		if i != t.Root {
			inc.stageSize[drv[i]]++
		}
	}
	inc.valid = true
}

func (inc *Incremental) clearPending() {
	for _, v := range inc.pending {
		inc.pendingMark[v] = false
	}
	inc.pending = inc.pending[:0]
}

func (inc *Incremental) clearDirty() {
	for _, d := range inc.capList {
		inc.capDirty[d] = false
	}
	inc.capList = inc.capList[:0]
	for _, d := range inc.delayList {
		inc.delayDirty[d] = false
	}
	inc.delayList = inc.delayList[:0]
	for _, d := range inc.schedList {
		inc.mode[d] = modeNone
	}
	inc.schedList = inc.schedList[:0]
	inc.driverHeap = inc.driverHeap[:0]
}

func (inc *Incremental) markCap(d int) {
	if !inc.capDirty[d] {
		inc.capDirty[d] = true
		inc.capList = append(inc.capList, d)
	}
}

func (inc *Incremental) markDelay(d int) {
	if !inc.delayDirty[d] {
		inc.delayDirty[d] = true
		inc.delayList = append(inc.delayList, d)
	}
}

// schedule queues stage driver d for timing re-propagation; a stage asked
// for both modes keeps the stronger one.
func (inc *Incremental) schedule(d int, m uint8) {
	if inc.mode[d] == modeNone {
		inc.mode[d] = m
		inc.schedList = append(inc.schedList, d)
		heap.Push(&inc.driverHeap, hDriver{depth: inc.depth[d], node: d})
		return
	}
	if m > inc.mode[d] {
		inc.mode[d] = m
	}
}

// update applies the pending edits to the cached analysis. It returns
// false when the edits call for a full re-analysis (structural change,
// out-of-range field, or dirty region over budget); partially written
// buffers are safe because the full pass overwrites everything.
func (inc *Incremental) update(t *ctree.Tree) bool {
	defer inc.clearDirty()
	a, te, lib := inc.an, inc.te, inc.lib
	res := &a.res
	n := inc.n
	// A full pass costs 2n node visits, so that is the break-even budget:
	// past it an update stops paying for itself. The pre-check below
	// catches most oversized dirty sets before any work; this bounds the
	// cascade itself.
	budget := 2 * n
	if budget < 32 {
		budget = 32
	}
	visits := 0

	wireDirty, bufDirty, sinkDirty := false, false, false
	for _, v := range inc.pending {
		nd := &t.Nodes[v]
		if (inc.bufIdx[v] == ctree.NoBuf) != (nd.BufIdx == ctree.NoBuf) {
			return false // buffer added or removed: stage structure changed
		}
		// A sink pin-cap edit changes the endpoint cap an unbuffered leaf
		// presents to its stage — exactly the L[v] the full pass reads.
		if nd.BufIdx == ctree.NoBuf && nd.SinkIdx != ctree.NoSink && t.IsLeaf(v) {
			if c := t.Sinks[nd.SinkIdx].Cap; c != a.endCap[v] {
				a.endCap[v] = c
				sinkDirty = true
				inc.markCap(a.drv[v])
			}
		}
		if nd.Parent != ctree.NoNode {
			if nd.Rule < 0 || nd.Rule >= te.NumRules() {
				return false // full pass reports the error
			}
			er := te.WireR(nd.EdgeLen, nd.Rule)
			ec := te.WireC(nd.EdgeLen, nd.Rule)
			edited := false
			if er != a.edgeR[v] {
				a.edgeR[v] = er
				edited = true
			}
			if ec != a.edgeC[v] {
				a.edgeC[v] = ec
				wireDirty = true
				edited = true
			}
			if edited {
				inc.markCap(a.drv[v])
			}
		}
		if nd.BufIdx != inc.bufIdx[v] {
			if nd.BufIdx < 0 || nd.BufIdx >= len(lib.Buffers) {
				return false // full pass reports the error
			}
			a.endCap[v] = lib.Buffers[nd.BufIdx].InputCap
			inc.bufIdx[v] = nd.BufIdx
			bufDirty = true
			if nd.Parent != ctree.NoNode {
				inc.markCap(a.drv[v]) // new input cap loads the parent stage
			} else {
				// Root resize: no parent stage rebuild walks the root, so
				// refresh its own lumped cap here (buffered ⇒ no kid term).
				a.downCap[v] = a.endCap[v] + a.edgeC[v]/2
			}
			inc.markDelay(v) // its own stage re-reads the NLDM tables
		}
	}

	// Cheap lower bound before doing any stage work: every dirty stage
	// must be walked at least once in each phase.
	est := 0
	for _, d := range inc.capList {
		est += 2 * inc.stageSize[d]
	}
	for _, d := range inc.delayList {
		if !inc.capDirty[d] {
			est += inc.stageSize[d]
		}
	}
	if est > budget {
		return false
	}

	// Cap phase: rebuild each cap-dirty stage bottom-up with the full
	// pass's accumulation order. Effects cannot escape the stage — buffer
	// inputs terminate the downstream-cap sum — so no upstream chain walk
	// is needed beyond the owning stage itself.
	for _, d := range inc.capList {
		stage := inc.stageBuf[:0]
		w := inc.walk[:0]
		for _, k := range t.Nodes[d].Kids {
			if k != ctree.NoNode {
				w = append(w, k)
			}
		}
		for len(w) > 0 {
			v := w[len(w)-1]
			w = w[:len(w)-1]
			stage = append(stage, v)
			if t.Nodes[v].BufIdx == ctree.NoBuf {
				for _, k := range t.Nodes[v].Kids {
					if k != ctree.NoNode {
						w = append(w, k)
					}
				}
			}
		}
		inc.walk = w[:0]
		visits += len(stage)
		if visits > budget {
			inc.stageBuf = stage[:0]
			inc.stats.NodeVisits += int64(visits) // wasted work still counts
			return false
		}
		// Children before parents: reversed pre-order, with the identical
		// per-node adds the full pass performs.
		for i := len(stage) - 1; i >= 0; i-- {
			v := stage[i]
			nd := &t.Nodes[v]
			dv := a.endCap[v] + a.edgeC[v]/2
			if nd.BufIdx == ctree.NoBuf {
				for _, k := range nd.Kids {
					if k != ctree.NoNode {
						dv += a.downCap[k] + a.edgeC[k]/2
					}
				}
			}
			a.downCap[v] = dv
		}
		load := 0.0
		for _, k := range t.Nodes[d].Kids {
			if k != ctree.NoNode {
				load += a.downCap[k] + a.edgeC[k]/2
			}
		}
		res.StageCap[d] = load
		inc.stageBuf = stage[:0]
		inc.schedule(d, modeFull)
	}
	for _, d := range inc.delayList {
		inc.schedule(d, modeFull)
	}

	// Timing phase: re-propagate dirty stages in depth order (a stage's
	// driver is strictly shallower than any stage it feeds, so parents
	// always commit their endpoint arrivals/slews before children read
	// them). Propagation prunes at every buffered endpoint whose values
	// come out bitwise unchanged.
	for len(inc.driverHeap) > 0 {
		d := heap.Pop(&inc.driverHeap).(hDriver).node
		m := inc.mode[d]
		if m == modeFull {
			b := &lib.Buffers[t.Nodes[d].BufIdx]
			load := res.StageCap[d]
			delay := b.DelayAt(res.Slew[d], load)
			a.stageDelay[d] = delay
			a.stageOutArr[d] = res.Arrival[d] + delay
			a.stageOutSlew[d] = b.OutSlewAt(res.Slew[d], load)
		} else {
			// Arrival-only: input slew, load, and buffer unchanged, so the
			// cached delay is exactly what DelayAt would return.
			a.stageOutArr[d] = res.Arrival[d] + a.stageDelay[d]
		}
		w := inc.walk[:0]
		for _, k := range t.Nodes[d].Kids {
			if k != ctree.NoNode {
				w = append(w, k)
			}
		}
		for len(w) > 0 {
			v := w[len(w)-1]
			w = w[:len(w)-1]
			visits++
			if visits > budget {
				inc.walk = w[:0]
				inc.stats.NodeVisits += int64(visits) // wasted work still counts
				return false
			}
			nd := &t.Nodes[v]
			var arr, sl float64
			if m == modeFull {
				base := 0.0
				if p := nd.Parent; p != d {
					base = a.elm[p]
				}
				e := base + a.edgeR[v]*a.downCap[v]
				a.elm[v] = e
				arr = a.stageOutArr[d] + e
				sl = math.Hypot(a.stageOutSlew[d], rctree.Ln9*e)
			} else {
				arr = a.stageOutArr[d] + a.elm[v]
				sl = res.Slew[v]
			}
			if nd.BufIdx != ctree.NoBuf {
				arrChanged := arr != res.Arrival[v]
				slChanged := sl != res.Slew[v]
				res.Arrival[v] = arr
				res.Slew[v] = sl
				switch {
				case slChanged:
					inc.schedule(v, modeFull)
				case arrChanged:
					inc.schedule(v, modeArrival)
				}
				continue // endpoint: the child stage owns what lies below
			}
			res.Arrival[v] = arr
			res.Slew[v] = sl
			for _, k := range nd.Kids {
				if k != ctree.NoNode {
					w = append(w, k)
				}
			}
		}
		inc.walk = w[:0]
	}
	inc.stats.NodeVisits += int64(visits)

	// Inventory sums: re-sum in node-index order (the full pass's order)
	// rather than patching deltas — float addition is not associative, and
	// the contract is bitwise equality. One add per node, no traversal.
	if wireDirty {
		wc := 0.0
		for i := range t.Nodes {
			if t.Nodes[i].Parent != ctree.NoNode {
				wc += a.edgeC[i]
			}
		}
		res.WireCap = wc
	}
	if bufDirty {
		inCap, intCap, leak, count := 0.0, 0.0, 0.0, 0
		for i := range t.Nodes {
			if bi := t.Nodes[i].BufIdx; bi != ctree.NoBuf {
				b := &lib.Buffers[bi]
				inCap += b.InputCap
				intCap += b.InternalCap
				leak += b.Leakage
				count++
			}
		}
		res.BufInCap, res.BufIntCap, res.LeakageTot = inCap, intCap, leak
		res.BufferCount = count
	}
	if sinkDirty {
		sc := 0.0
		for i := range t.Nodes {
			if nd := &t.Nodes[i]; nd.BufIdx == ctree.NoBuf && t.IsLeaf(i) {
				sc += t.Sinks[nd.SinkIdx].Cap
			}
		}
		res.SinkCap = sc
	}
	return true
}

// runCrossCheck verifies the freshly committed incremental state against a
// from-scratch analysis on a shadow analyzer (1e-12 absolute tolerance).
func (inc *Incremental) runCrossCheck(t *ctree.Tree, inSlew float64) error {
	want, err := inc.checker.analyze(t, inSlew, nil, nil)
	if err != nil {
		return fmt.Errorf("sta: cross-check analysis failed: %w", err)
	}
	got := &inc.an.res
	const tol = 1e-12
	diff := func(a, b float64) bool { return math.Abs(a-b) > tol }
	for i := range t.Nodes {
		if diff(got.Arrival[i], want.Arrival[i]) || diff(got.Slew[i], want.Slew[i]) ||
			diff(got.DownCap[i], want.DownCap[i]) {
			return fmt.Errorf("sta: incremental cross-check mismatch at node %d: arrival %g vs %g, slew %g vs %g, downcap %g vs %g",
				i, got.Arrival[i], want.Arrival[i], got.Slew[i], want.Slew[i], got.DownCap[i], want.DownCap[i])
		}
	}
	if len(got.Drivers) != len(want.Drivers) {
		return fmt.Errorf("sta: incremental cross-check mismatch: %d drivers vs %d", len(got.Drivers), len(want.Drivers))
	}
	for k, d := range want.Drivers {
		if got.Drivers[k] != d {
			return fmt.Errorf("sta: incremental cross-check mismatch: driver[%d] %d vs %d", k, got.Drivers[k], d)
		}
		if diff(got.StageCap[d], want.StageCap[d]) {
			return fmt.Errorf("sta: incremental cross-check mismatch: StageCap[%d] %g vs %g", d, got.StageCap[d], want.StageCap[d])
		}
	}
	if diff(got.WireCap, want.WireCap) || diff(got.SinkCap, want.SinkCap) ||
		diff(got.BufInCap, want.BufInCap) ||
		diff(got.BufIntCap, want.BufIntCap) || diff(got.LeakageTot, want.LeakageTot) ||
		got.BufferCount != want.BufferCount {
		return fmt.Errorf("sta: incremental cross-check mismatch in inventory sums")
	}
	return nil
}

// hDriver is a stage driver queued for timing re-propagation.
type hDriver struct{ depth, node int }

// driverHeap is a min-heap of dirty stage drivers keyed by depth.
type driverHeap []hDriver

func (h driverHeap) Len() int           { return len(h) }
func (h driverHeap) Less(i, j int) bool { return h[i].depth < h[j].depth }
func (h driverHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *driverHeap) Push(x any)        { *h = append(*h, x.(hDriver)) }
func (h *driverHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
