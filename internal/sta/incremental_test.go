package sta_test

import (
	"math/rand"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// compareExact asserts two results agree bitwise — stronger than the
// 1e-12 the incremental contract promises, and what the byte-identical
// optimizer invariance relies on.
func compareExact(t *testing.T, tag string, tree *ctree.Tree, got, want *sta.Result) {
	t.Helper()
	for v := range tree.Nodes {
		if got.Arrival[v] != want.Arrival[v] {
			t.Fatalf("%s: node %d arrival %.17g, want %.17g", tag, v, got.Arrival[v], want.Arrival[v])
		}
		if got.Slew[v] != want.Slew[v] {
			t.Fatalf("%s: node %d slew %.17g, want %.17g", tag, v, got.Slew[v], want.Slew[v])
		}
		if got.DownCap[v] != want.DownCap[v] {
			t.Fatalf("%s: node %d downcap %.17g, want %.17g", tag, v, got.DownCap[v], want.DownCap[v])
		}
	}
	if len(got.Drivers) != len(want.Drivers) {
		t.Fatalf("%s: %d stages, want %d", tag, len(got.Drivers), len(want.Drivers))
	}
	for k, d := range want.Drivers {
		if got.Drivers[k] != d {
			t.Fatalf("%s: driver[%d] = %d, want %d", tag, k, got.Drivers[k], d)
		}
		if got.StageCap[d] != want.StageCap[d] {
			t.Fatalf("%s: StageCap[%d] %.17g, want %.17g", tag, d, got.StageCap[d], want.StageCap[d])
		}
	}
	if got.WireCap != want.WireCap || got.SinkCap != want.SinkCap ||
		got.BufInCap != want.BufInCap || got.BufIntCap != want.BufIntCap ||
		got.LeakageTot != want.LeakageTot || got.BufferCount != want.BufferCount {
		t.Fatalf("%s: inventory diverges: wire %.17g/%.17g bufin %.17g/%.17g count %d/%d",
			tag, got.WireCap, want.WireCap, got.BufInCap, want.BufInCap,
			got.BufferCount, want.BufferCount)
	}
	if got.Skew() != want.Skew() || got.MaxSinkArrival() != want.MaxSinkArrival() {
		t.Fatalf("%s: summary diverges", tag)
	}
}

// mutate applies one random edit to the tree and reports it to inc.
// Kind mix: rule changes and edge-length growth dominate (the optimizer's
// edits), with occasional buffer resizes, sink pin-cap edits (the design
// session workload), and revert pairs.
func mutate(rng *rand.Rand, tree *ctree.Tree, te *tech.Tech, lib *cell.Library, inc *sta.Incremental) {
	n := len(tree.Nodes)
	for {
		v := rng.Intn(n)
		nd := &tree.Nodes[v]
		switch k := rng.Intn(11); {
		case k < 5: // rule change
			if nd.Parent == ctree.NoNode {
				continue
			}
			nd.Rule = rng.Intn(te.NumRules())
			inc.Touch(v)
		case k < 8: // edge-length growth (snaking)
			if nd.Parent == ctree.NoNode {
				continue
			}
			nd.EdgeLen += rng.Float64() * 40
			inc.Touch(v)
		case k < 9: // buffer resize (never add/remove)
			if nd.BufIdx == ctree.NoBuf {
				continue
			}
			nd.BufIdx = rng.Intn(len(lib.Buffers))
			inc.Touch(v)
		case k < 10: // sink pin-cap edit on an unbuffered leaf
			if nd.SinkIdx == ctree.NoSink || nd.BufIdx != ctree.NoBuf || !tree.IsLeaf(v) {
				continue
			}
			tree.Sinks[nd.SinkIdx].Cap = (1 + 3*rng.Float64()) * 1e-15
			inc.Touch(v)
		default: // touch-then-revert: must be a no-op
			if nd.Parent == ctree.NoNode {
				continue
			}
			old := nd.Rule
			nd.Rule = rng.Intn(te.NumRules())
			inc.Touch(v)
			nd.Rule = old
			inc.Touch(v)
		}
		return
	}
}

// TestIncrementalDifferential is the correctness harness the tentpole
// demands: randomized trees, randomized edit sequences, every incremental
// Analyze compared bitwise against a from-scratch analysis of the same
// tree state.
func TestIncrementalDifferential(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	ref := sta.NewAnalyzer(te, lib)
	for _, tc := range []struct {
		sinks int
		seed  int64
	}{{25, 11}, {60, 12}, {120, 13}, {250, 14}} {
		tree := synthTree(t, tc.sinks, tc.seed, te, lib)
		rng := rand.New(rand.NewSource(tc.seed * 1000))
		inc := sta.NewIncremental(te, lib)
		for round := 0; round < 60; round++ {
			// Edit batches from 0 (cached path) through localized (1–3)
			// up to wide batches that should trip the fallback.
			batch := 0
			switch rng.Intn(8) {
			case 0:
				batch = 0
			case 1, 2, 3, 4:
				batch = 1 + rng.Intn(3)
			case 5, 6:
				batch = 4 + rng.Intn(12)
			default:
				batch = len(tree.Nodes) / 2
			}
			for i := 0; i < batch; i++ {
				mutate(rng, tree, te, lib, inc)
			}
			got, err := inc.Analyze(tree, 40e-12)
			if err != nil {
				t.Fatalf("sinks=%d round=%d: %v", tc.sinks, round, err)
			}
			want, err := ref.Analyze(tree, 40e-12, nil)
			if err != nil {
				t.Fatal(err)
			}
			compareExact(t, "differential", tree, got, want)
		}
		st := inc.Stats()
		if st.IncRuns == 0 {
			t.Errorf("sinks=%d: no incremental run committed (full=%d cached=%d fallback=%d)",
				tc.sinks, st.FullRuns, st.CachedRuns, st.Fallbacks)
		}
		if st.CachedRuns == 0 {
			t.Errorf("sinks=%d: cached path never exercised", tc.sinks)
		}
	}
}

// TestIncrementalCrossCheck runs the same randomized workload with the
// debug cross-check mode on: any divergence surfaces as an Analyze error.
func TestIncrementalCrossCheck(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 80, 21, te, lib)
	rng := rand.New(rand.NewSource(2100))
	inc := sta.NewIncremental(te, lib)
	inc.SetCrossCheck(true)
	for round := 0; round < 40; round++ {
		for i := 0; i < 1+rng.Intn(4); i++ {
			mutate(rng, tree, te, lib, inc)
		}
		if _, err := inc.Analyze(tree, 40e-12); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if inc.Stats().IncRuns == 0 {
		t.Error("cross-check workload never took the incremental path")
	}
}

// TestIncrementalCachedRun: a zero-edit Analyze must be served from cache
// and still be exact.
func TestIncrementalCachedRun(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 50, 22, te, lib)
	inc := sta.NewIncremental(te, lib)
	if _, err := inc.Analyze(tree, 40e-12); err != nil {
		t.Fatal(err)
	}
	v0 := inc.Stats().NodeVisits
	got, err := inc.Analyze(tree, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if st.CachedRuns != 1 || st.NodeVisits != v0 {
		t.Fatalf("zero-edit analyze not cached: %+v", st)
	}
	want, err := sta.Analyze(tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	compareExact(t, "cached", tree, got, want)
}

// TestIncrementalStructuralFallback: adding or removing a buffer changes
// stage structure and must fall back to a full pass — and stay exact.
func TestIncrementalStructuralFallback(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 60, 23, te, lib)
	inc := sta.NewIncremental(te, lib)
	if _, err := inc.Analyze(tree, 40e-12); err != nil {
		t.Fatal(err)
	}
	// Promote a non-buffered internal node to a buffer.
	target := -1
	for v := range tree.Nodes {
		if tree.Nodes[v].BufIdx == ctree.NoBuf && !tree.IsLeaf(v) && tree.Nodes[v].Parent != ctree.NoNode {
			target = v
			break
		}
	}
	if target < 0 {
		t.Skip("no promotable node in this tree")
	}
	tree.Nodes[target].BufIdx = 0
	inc.Touch(target)
	got, err := inc.Analyze(tree, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats().Fallbacks != 1 {
		t.Fatalf("structural edit did not fall back: %+v", inc.Stats())
	}
	want, err := sta.Analyze(tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	compareExact(t, "structural", tree, got, want)
}

// TestIncrementalInputSlewChange: a different input slew invalidates the
// cache (full run), and localized edits afterwards are incremental again.
func TestIncrementalInputSlewChange(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 60, 24, te, lib)
	inc := sta.NewIncremental(te, lib)
	if _, err := inc.Analyze(tree, 40e-12); err != nil {
		t.Fatal(err)
	}
	got, err := inc.Analyze(tree, 55e-12)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats().FullRuns != 2 {
		t.Fatalf("slew change must force a full run: %+v", inc.Stats())
	}
	want, err := sta.Analyze(tree, te, lib, 55e-12)
	if err != nil {
		t.Fatal(err)
	}
	compareExact(t, "slew-change", tree, got, want)
}

// TestIncrementalLocalizedEditVisits: one leaf-stage edit on a large tree
// must cost a small fraction of a full pass's 2n visits.
func TestIncrementalLocalizedEditVisits(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 500, 25, te, lib)
	n := len(tree.Nodes)
	inc := sta.NewIncremental(te, lib)
	if _, err := inc.Analyze(tree, 40e-12); err != nil {
		t.Fatal(err)
	}
	// Deepest sink's feeding edge: its stage has no stages below it.
	deepest, bestDepth := -1, -1
	depth := make([]int, n)
	tree.PreOrder(func(v int) {
		if p := tree.Nodes[v].Parent; p != ctree.NoNode {
			depth[v] = depth[p] + 1
		}
		if tree.Nodes[v].SinkIdx != ctree.NoSink && depth[v] > bestDepth {
			deepest, bestDepth = v, depth[v]
		}
	})
	v0 := inc.Stats().NodeVisits
	tree.Nodes[deepest].EdgeLen += 5
	inc.Touch(deepest)
	got, err := inc.Analyze(tree, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if st.IncRuns != 1 {
		t.Fatalf("leaf edit did not take the incremental path: %+v", st)
	}
	cost := st.NodeVisits - v0
	if cost > int64(2*n/5) {
		t.Errorf("leaf-stage edit cost %d visits on a %d-node tree (full pass = %d)", cost, n, 2*n)
	}
	want, err := sta.Analyze(tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	compareExact(t, "localized", tree, got, want)
}

// TestIncrementalSinkCapEdit: a sink pin-cap edit on an unbuffered leaf
// must take the incremental path (not a fallback), stay local to the
// owning stage's cost scale, and commit results bitwise identical to a
// from-scratch analysis — including the SinkCap inventory sum.
func TestIncrementalSinkCapEdit(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 300, 31, te, lib)
	inc := sta.NewIncremental(te, lib)
	if _, err := inc.Analyze(tree, 40e-12); err != nil {
		t.Fatal(err)
	}
	leaf := -1
	for v := range tree.Nodes {
		nd := &tree.Nodes[v]
		if nd.SinkIdx != ctree.NoSink && nd.BufIdx == ctree.NoBuf && tree.IsLeaf(v) {
			leaf = v
			break
		}
	}
	if leaf < 0 {
		t.Fatal("no unbuffered sink leaf in synth tree")
	}
	si := tree.Nodes[leaf].SinkIdx
	origCap := tree.Sinks[si].Cap
	tree.Sinks[si].Cap *= 2.5
	inc.Touch(leaf)
	got, err := inc.Analyze(tree, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if st.IncRuns != 1 || st.Fallbacks != 0 {
		t.Fatalf("sink-cap edit did not take the incremental path: %+v", st)
	}
	want, err := sta.Analyze(tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	compareExact(t, "sink-cap", tree, got, want)

	// Restoring the exact original bits must also go incrementally and
	// return the state of the first analysis (sessions roll back this way).
	tree.Sinks[si].Cap = origCap
	inc.Touch(leaf)
	got, err = inc.Analyze(tree, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats().IncRuns != 2 {
		t.Fatalf("sink-cap revert did not take the incremental path: %+v", inc.Stats())
	}
	want, err = sta.Analyze(tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	compareExact(t, "sink-cap-revert", tree, got, want)
}

// TestIncrementalRootBufferResize pins a fix: resizing the root driver's
// buffer has no parent stage to rebuild the root's own lumped cap, so the
// update path must refresh Result.DownCap[root] itself.
func TestIncrementalRootBufferResize(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := synthTree(t, 40, 33, te, lib)
	inc := sta.NewIncremental(te, lib)
	if _, err := inc.Analyze(tree, 40e-12); err != nil {
		t.Fatal(err)
	}
	root := tree.Root
	if tree.Nodes[root].BufIdx == ctree.NoBuf {
		t.Fatal("synth tree root is unbuffered")
	}
	tree.Nodes[root].BufIdx = (tree.Nodes[root].BufIdx + 1) % len(lib.Buffers)
	inc.Touch(root)
	got, err := inc.Analyze(tree, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats().IncRuns != 1 {
		t.Fatalf("root resize did not take the incremental path: %+v", inc.Stats())
	}
	want, err := sta.Analyze(tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	compareExact(t, "root-resize", tree, got, want)
}
