// Package sta performs static timing analysis of a buffered clock tree:
// per-sink arrival times (insertion delay), global skew, and transition
// (slew) at every pin. It is the ground truth the rest of the flow
// optimizes against.
//
// The network is evaluated stage by stage. A stage is the RC tree between
// one buffer's output and the next buffer inputs / clock sinks below it.
// Wire delay within a stage is Elmore on the π-model; wire slew is the
// PERI scaled-Elmore estimate, root-sum-square combined with the driver's
// output transition; buffer delay and output slew come from the NLDM
// tables of package cell, evaluated at the stage's total capacitance —
// the standard CTS-internal delay calculation.
package sta

import (
	"errors"
	"fmt"
	"math"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/obs"
	"smartndr/internal/rctree"
	"smartndr/internal/tech"
)

// Result holds one analysis of a clock tree.
type Result struct {
	// Arrival[v] is the arrival time at node v's *input* pin: for sink
	// nodes the clock arrival at the flip-flop, for buffered nodes the
	// arrival at the buffer input, s.
	Arrival []float64
	// Slew[v] is the transition at node v's input pin, s.
	Slew []float64
	// StageCap[v] is the capacitance the buffer at node v drives, F.
	// Entries are meaningful only at buffered nodes; Drivers lists those
	// nodes, so `for _, d := range r.Drivers { r.StageCap[d] }` is the
	// canonical (and deterministic) way to walk the stages.
	StageCap []float64
	// Drivers lists the buffered node indices in ascending node order.
	Drivers []int
	// DownCap[v] is the π-lumped downstream capacitance at and below v
	// *within its stage* (buffer inputs terminate the accumulation), F.
	// It is exactly the load an extra micron of wire on v's feeding edge
	// would drive — the skew-repair snaking pass uses it.
	DownCap []float64

	// Capacitance inventory, F (for the power model).
	WireCap     float64 // all wire under assigned rules
	SinkCap     float64 // sink pins
	BufInCap    float64 // buffer input pins
	BufIntCap   float64 // buffer internal switching cap
	LeakageTot  float64 // W, summed buffer leakage
	BufferCount int

	sinkNodes []int
}

// MaxSinkArrival returns the largest sink arrival (insertion delay).
func (r *Result) MaxSinkArrival() float64 {
	hi := math.Inf(-1)
	for _, v := range r.sinkNodes {
		hi = math.Max(hi, r.Arrival[v])
	}
	return hi
}

// Skew returns max−min sink arrival.
func (r *Result) Skew() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range r.sinkNodes {
		lo = math.Min(lo, r.Arrival[v])
		hi = math.Max(hi, r.Arrival[v])
	}
	if len(r.sinkNodes) == 0 {
		return 0
	}
	return hi - lo
}

// WorstSlew returns the largest transition at any sink or buffer input,
// and the node where it occurs.
func (r *Result) WorstSlew() (float64, int) {
	worst, at := 0.0, -1
	for v, s := range r.Slew {
		if s > worst {
			worst, at = s, v
		}
	}
	return worst, at
}

// SlewViolations counts pins whose transition exceeds the limit.
func (r *Result) SlewViolations(limit float64) int {
	n := 0
	for _, s := range r.Slew {
		if s > limit {
			n++
		}
	}
	return n
}

// SinkArrivals returns arrival times indexed by sink (not node) order.
func (r *Result) SinkArrivals(t *ctree.Tree) []float64 {
	out := make([]float64, len(t.Sinks))
	for _, v := range r.sinkNodes {
		out[t.Nodes[v].SinkIdx] = r.Arrival[v]
	}
	return out
}

// Overrides optionally replace the electrical view of the tree for
// variation analysis: per-edge parasitics (indexed by node, replacing the
// rule-derived values) and a per-node multiplicative buffer delay scale.
// Nil slices fall back to nominal values.
type Overrides struct {
	EdgeR    []float64 // Ω per edge; nil → from rules
	EdgeC    []float64 // F per edge; nil → from rules
	BufScale []float64 // delay multiplier per buffered node; nil → 1
}

// Analyze evaluates the tree. inSlew is the transition of the clock signal
// arriving at the root buffer's input. The root node must carry a buffer
// (the source driver); every other buffer must lie on a path below it.
func Analyze(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64) (*Result, error) {
	return AnalyzeTr(t, te, lib, inSlew, nil, nil)
}

// AnalyzeOv is Analyze with electrical overrides (see Overrides).
func AnalyzeOv(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, ov *Overrides) (*Result, error) {
	return AnalyzeTr(t, te, lib, inSlew, ov, nil)
}

// AnalyzeTr is AnalyzeOv with instrumentation: the run is split into an
// "rc_build" span (parasitic extraction and load accumulation) and a
// "propagate" span (the timing walk), so profiles show where analysis
// time goes. A nil tracer adds no overhead.
//
// Every call allocates a fresh Result. Callers analyzing the same tree
// repeatedly (Monte Carlo trials, optimizer inner loops) should hold an
// Analyzer instead, which reuses all working storage.
func AnalyzeTr(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, ov *Overrides, tr *obs.Tracer) (*Result, error) {
	return NewAnalyzer(te, lib).analyze(t, inSlew, ov, tr)
}

// Analyzer runs repeated analyses without per-call allocation: the
// working buffers and the Result itself are preallocated once and reused
// on every Analyze call. An Analyzer is not safe for concurrent use —
// give each worker goroutine its own.
type Analyzer struct {
	te  *tech.Tech
	lib *cell.Library
	res Result

	edgeR, edgeC []float64 // per-edge parasitics under assigned rules
	endCap       []float64 // L[v]: endpoint cap v presents to its stage
	downCap      []float64 // D[v]: π-lumped cap at-and-below v in-stage
	elm          []float64 // Elmore delay from stage driver output to v
	drv          []int     // owning stage driver per node
	// Stage driver outputs, indexed by driver node (written in startStage
	// before any descendant reads them — no clearing needed).
	stageOutArr, stageOutSlew []float64
	// stageDelay[v] is the driver delay computed for buffered node v by the
	// most recent analysis (before any BufScale override). The incremental
	// engine reuses it to re-derive stageOutArr for stages whose input slew
	// and load did not change, bitwise-identically to a fresh startStage.
	stageDelay []float64
	// Traversal stacks, reused so the tree walks stay allocation-free
	// (ctree's PostOrder/PreOrder allocate their stacks per call).
	postStack []postFrame
	preStack  []int
}

type postFrame struct {
	node int
	kid  int
}

// NewAnalyzer returns an analyzer for the technology and library. The
// first Analyze call sizes the buffers; later calls on same-sized trees
// are allocation-free.
func NewAnalyzer(te *tech.Tech, lib *cell.Library) *Analyzer {
	return &Analyzer{te: te, lib: lib}
}

// Analyze evaluates the tree, reusing the analyzer's storage. The
// returned Result (including its DownCap and StageCap slices) is
// owned by the analyzer and overwritten by the next call — clone
// whatever must outlive it.
func (a *Analyzer) Analyze(t *ctree.Tree, inSlew float64, ov *Overrides) (*Result, error) {
	return a.analyze(t, inSlew, ov, nil)
}

// resize readies the analyzer's buffers for an n-node tree.
func (a *Analyzer) resize(n int) {
	if cap(a.edgeR) < n {
		a.edgeR = make([]float64, n)
		a.edgeC = make([]float64, n)
		a.endCap = make([]float64, n)
		a.downCap = make([]float64, n)
		a.elm = make([]float64, n)
		a.drv = make([]int, n)
		a.stageOutArr = make([]float64, n)
		a.stageOutSlew = make([]float64, n)
		a.stageDelay = make([]float64, n)
		a.res.Arrival = make([]float64, n)
		a.res.Slew = make([]float64, n)
		a.res.StageCap = make([]float64, n)
	} else {
		a.edgeR = a.edgeR[:n]
		a.edgeC = a.edgeC[:n]
		a.endCap = a.endCap[:n]
		a.downCap = a.downCap[:n]
		a.elm = a.elm[:n]
		a.drv = a.drv[:n]
		a.stageOutArr = a.stageOutArr[:n]
		a.stageOutSlew = a.stageOutSlew[:n]
		a.stageDelay = a.stageDelay[:n]
		a.res.Arrival = a.res.Arrival[:n]
		a.res.Slew = a.res.Slew[:n]
		a.res.StageCap = a.res.StageCap[:n]
		clear(a.res.StageCap)
	}
	a.res.Drivers = a.res.Drivers[:0]
	a.res.DownCap = nil
	a.res.sinkNodes = a.res.sinkNodes[:0]
	a.res.WireCap, a.res.SinkCap, a.res.BufInCap, a.res.BufIntCap = 0, 0, 0, 0
	a.res.LeakageTot = 0
	a.res.BufferCount = 0
}

func (a *Analyzer) analyze(t *ctree.Tree, inSlew float64, ov *Overrides, tr *obs.Tracer) (*Result, error) {
	te, lib := a.te, a.lib
	if t.Root == ctree.NoNode {
		return nil, errors.New("sta: tree has no root")
	}
	if t.Nodes[t.Root].BufIdx == ctree.NoBuf {
		return nil, errors.New("sta: root carries no driver buffer")
	}
	if inSlew <= 0 {
		return nil, fmt.Errorf("sta: non-positive input slew %g", inSlew)
	}
	sp := tr.Start("sta.analyze", obs.I("nodes", len(t.Nodes)))
	defer sp.End()
	rcSpan := tr.Start("rc_build")
	defer rcSpan.End() // error paths; no-op after the explicit End below
	n := len(t.Nodes)
	a.resize(n)
	res := &a.res

	// Per-edge parasitics under the assigned rules.
	edgeR, edgeC := a.edgeR, a.edgeC
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.Parent == ctree.NoNode {
			edgeR[i], edgeC[i] = 0, 0
			continue
		}
		if nd.Rule < 0 || nd.Rule >= te.NumRules() {
			return nil, fmt.Errorf("sta: node %d has out-of-range rule %d", i, nd.Rule)
		}
		if ov != nil && ov.EdgeR != nil {
			edgeR[i] = ov.EdgeR[i]
		} else {
			edgeR[i] = te.WireR(nd.EdgeLen, nd.Rule)
		}
		if ov != nil && ov.EdgeC != nil {
			edgeC[i] = ov.EdgeC[i]
		} else {
			edgeC[i] = te.WireC(nd.EdgeLen, nd.Rule)
		}
		res.WireCap += edgeC[i]
	}

	// L[v]: endpoint cap v presents to its parent's stage.
	// D[v]: π-model lumped cap at-and-below v within the stage owning v's
	// feeding edge.
	L := a.endCap
	D := a.downCap
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		L[i] = 0
		switch {
		case nd.BufIdx != ctree.NoBuf:
			b := &lib.Buffers[nd.BufIdx]
			if nd.BufIdx < 0 || nd.BufIdx >= len(lib.Buffers) {
				return nil, fmt.Errorf("sta: node %d has out-of-range buffer %d", i, nd.BufIdx)
			}
			L[i] = b.InputCap
			res.BufInCap += b.InputCap
			res.BufIntCap += b.InternalCap
			res.LeakageTot += b.Leakage
			res.BufferCount++
			res.Drivers = append(res.Drivers, i)
		case t.IsLeaf(i):
			L[i] = t.Sinks[nd.SinkIdx].Cap
			res.SinkCap += L[i]
		}
	}
	// Post-order walk (children before parents), inlined on the reusable
	// stack — semantically identical to ctree.PostOrder.
	post := append(a.postStack[:0], postFrame{t.Root, 0})
	for len(post) > 0 {
		f := &post[len(post)-1]
		advanced := false
		for f.kid < 2 {
			k := t.Nodes[f.node].Kids[f.kid]
			f.kid++
			if k != ctree.NoNode {
				post = append(post, postFrame{k, 0})
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		v := f.node
		post = post[:len(post)-1]

		nd := &t.Nodes[v]
		D[v] = L[v] + edgeC[v]/2
		if nd.BufIdx != ctree.NoBuf {
			// Children belong to v's own (new) stage; accumulate its load.
			load := 0.0
			for _, k := range nd.Kids {
				if k != ctree.NoNode {
					load += D[k] + edgeC[k]/2
				}
			}
			res.StageCap[v] = load
			continue
		}
		for _, k := range nd.Kids {
			if k != ctree.NoNode {
				D[v] += D[k] + edgeC[k]/2
			}
		}
	}
	a.postStack = post[:0]

	rcSpan.End()

	// Timing, one pre-order pass. elm[v] is the Elmore delay from the
	// owning stage driver's output pin to v; stageOutArr/stageOutSlew are
	// indexed by driver node.
	propSpan := tr.Start("propagate")
	elm := a.elm
	stageOutArr := a.stageOutArr
	stageOutSlew := a.stageOutSlew
	drv := a.drv
	startStage := func(v int) {
		b := &lib.Buffers[t.Nodes[v].BufIdx]
		load := res.StageCap[v]
		d := b.DelayAt(res.Slew[v], load)
		a.stageDelay[v] = d
		if ov != nil && ov.BufScale != nil {
			d *= ov.BufScale[v]
		}
		stageOutArr[v] = res.Arrival[v] + d
		stageOutSlew[v] = b.OutSlewAt(res.Slew[v], load)
	}
	res.Arrival[t.Root] = 0
	res.Slew[t.Root] = inSlew
	elm[t.Root] = 0
	drv[t.Root] = t.Root
	startStage(t.Root)
	// Pre-order walk (parents before children), inlined on the reusable
	// stack — semantically identical to ctree.PreOrder.
	pre := append(a.preStack[:0], t.Root)
	for len(pre) > 0 {
		v := pre[len(pre)-1]
		pre = pre[:len(pre)-1]
		for _, k := range t.Nodes[v].Kids {
			if k != ctree.NoNode {
				pre = append(pre, k)
			}
		}
		if v == t.Root {
			continue
		}
		p := t.Nodes[v].Parent
		var d int
		var base float64
		if t.Nodes[p].BufIdx != ctree.NoBuf {
			d = p
			base = 0
		} else {
			d = drv[p]
			base = elm[p]
		}
		drv[v] = d
		elm[v] = base + edgeR[v]*D[v]
		res.Arrival[v] = stageOutArr[d] + elm[v]
		res.Slew[v] = math.Hypot(stageOutSlew[d], rctree.Ln9*elm[v])
		if t.Nodes[v].BufIdx != ctree.NoBuf {
			startStage(v)
		}
	}
	a.preStack = pre[:0]
	for i := range t.Nodes {
		if t.Nodes[i].SinkIdx != ctree.NoSink {
			res.sinkNodes = append(res.sinkNodes, i)
		}
	}
	res.DownCap = D
	propSpan.End()
	return res, nil
}

// TotalSwitchedCap returns the capacitance toggling every clock cycle:
// wire, sink pins, buffer inputs, and buffer internal cap.
func (r *Result) TotalSwitchedCap() float64 {
	return r.WireCap + r.SinkCap + r.BufInCap + r.BufIntCap
}
