// Package sta performs static timing analysis of a buffered clock tree:
// per-sink arrival times (insertion delay), global skew, and transition
// (slew) at every pin. It is the ground truth the rest of the flow
// optimizes against.
//
// The network is evaluated stage by stage. A stage is the RC tree between
// one buffer's output and the next buffer inputs / clock sinks below it.
// Wire delay within a stage is Elmore on the π-model; wire slew is the
// PERI scaled-Elmore estimate, root-sum-square combined with the driver's
// output transition; buffer delay and output slew come from the NLDM
// tables of package cell, evaluated at the stage's total capacitance —
// the standard CTS-internal delay calculation.
package sta

import (
	"errors"
	"fmt"
	"math"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/obs"
	"smartndr/internal/rctree"
	"smartndr/internal/tech"
)

// Result holds one analysis of a clock tree.
type Result struct {
	// Arrival[v] is the arrival time at node v's *input* pin: for sink
	// nodes the clock arrival at the flip-flop, for buffered nodes the
	// arrival at the buffer input, s.
	Arrival []float64
	// Slew[v] is the transition at node v's input pin, s.
	Slew []float64
	// StageCap maps each buffered node to the capacitance its buffer
	// drives, F.
	StageCap map[int]float64
	// DownCap[v] is the π-lumped downstream capacitance at and below v
	// *within its stage* (buffer inputs terminate the accumulation), F.
	// It is exactly the load an extra micron of wire on v's feeding edge
	// would drive — the skew-repair snaking pass uses it.
	DownCap []float64

	// Capacitance inventory, F (for the power model).
	WireCap     float64 // all wire under assigned rules
	SinkCap     float64 // sink pins
	BufInCap    float64 // buffer input pins
	BufIntCap   float64 // buffer internal switching cap
	LeakageTot  float64 // W, summed buffer leakage
	BufferCount int

	sinkNodes []int
}

// MaxSinkArrival returns the largest sink arrival (insertion delay).
func (r *Result) MaxSinkArrival() float64 {
	hi := math.Inf(-1)
	for _, v := range r.sinkNodes {
		hi = math.Max(hi, r.Arrival[v])
	}
	return hi
}

// Skew returns max−min sink arrival.
func (r *Result) Skew() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range r.sinkNodes {
		lo = math.Min(lo, r.Arrival[v])
		hi = math.Max(hi, r.Arrival[v])
	}
	if len(r.sinkNodes) == 0 {
		return 0
	}
	return hi - lo
}

// WorstSlew returns the largest transition at any sink or buffer input,
// and the node where it occurs.
func (r *Result) WorstSlew() (float64, int) {
	worst, at := 0.0, -1
	for v, s := range r.Slew {
		if s > worst {
			worst, at = s, v
		}
	}
	return worst, at
}

// SlewViolations counts pins whose transition exceeds the limit.
func (r *Result) SlewViolations(limit float64) int {
	n := 0
	for _, s := range r.Slew {
		if s > limit {
			n++
		}
	}
	return n
}

// SinkArrivals returns arrival times indexed by sink (not node) order.
func (r *Result) SinkArrivals(t *ctree.Tree) []float64 {
	out := make([]float64, len(t.Sinks))
	for _, v := range r.sinkNodes {
		out[t.Nodes[v].SinkIdx] = r.Arrival[v]
	}
	return out
}

// Overrides optionally replace the electrical view of the tree for
// variation analysis: per-edge parasitics (indexed by node, replacing the
// rule-derived values) and a per-node multiplicative buffer delay scale.
// Nil slices fall back to nominal values.
type Overrides struct {
	EdgeR    []float64 // Ω per edge; nil → from rules
	EdgeC    []float64 // F per edge; nil → from rules
	BufScale []float64 // delay multiplier per buffered node; nil → 1
}

// Analyze evaluates the tree. inSlew is the transition of the clock signal
// arriving at the root buffer's input. The root node must carry a buffer
// (the source driver); every other buffer must lie on a path below it.
func Analyze(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64) (*Result, error) {
	return AnalyzeTr(t, te, lib, inSlew, nil, nil)
}

// AnalyzeOv is Analyze with electrical overrides (see Overrides).
func AnalyzeOv(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, ov *Overrides) (*Result, error) {
	return AnalyzeTr(t, te, lib, inSlew, ov, nil)
}

// AnalyzeTr is AnalyzeOv with instrumentation: the run is split into an
// "rc_build" span (parasitic extraction and load accumulation) and a
// "propagate" span (the timing walk), so profiles show where analysis
// time goes. A nil tracer adds no overhead.
func AnalyzeTr(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, ov *Overrides, tr *obs.Tracer) (*Result, error) {
	if t.Root == ctree.NoNode {
		return nil, errors.New("sta: tree has no root")
	}
	if t.Nodes[t.Root].BufIdx == ctree.NoBuf {
		return nil, errors.New("sta: root carries no driver buffer")
	}
	if inSlew <= 0 {
		return nil, fmt.Errorf("sta: non-positive input slew %g", inSlew)
	}
	sp := tr.Start("sta.analyze", obs.I("nodes", len(t.Nodes)))
	defer sp.End()
	rcSpan := tr.Start("rc_build")
	n := len(t.Nodes)
	res := &Result{
		Arrival:  make([]float64, n),
		Slew:     make([]float64, n),
		StageCap: make(map[int]float64),
	}

	// Per-edge parasitics under the assigned rules.
	edgeR := make([]float64, n)
	edgeC := make([]float64, n)
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.Parent == ctree.NoNode {
			continue
		}
		if nd.Rule < 0 || nd.Rule >= te.NumRules() {
			return nil, fmt.Errorf("sta: node %d has out-of-range rule %d", i, nd.Rule)
		}
		if ov != nil && ov.EdgeR != nil {
			edgeR[i] = ov.EdgeR[i]
		} else {
			edgeR[i] = te.WireR(nd.EdgeLen, nd.Rule)
		}
		if ov != nil && ov.EdgeC != nil {
			edgeC[i] = ov.EdgeC[i]
		} else {
			edgeC[i] = te.WireC(nd.EdgeLen, nd.Rule)
		}
		res.WireCap += edgeC[i]
	}

	// L[v]: endpoint cap v presents to its parent's stage.
	// D[v]: π-model lumped cap at-and-below v within the stage owning v's
	// feeding edge.
	L := make([]float64, n)
	D := make([]float64, n)
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		switch {
		case nd.BufIdx != ctree.NoBuf:
			b := &lib.Buffers[nd.BufIdx]
			if nd.BufIdx < 0 || nd.BufIdx >= len(lib.Buffers) {
				return nil, fmt.Errorf("sta: node %d has out-of-range buffer %d", i, nd.BufIdx)
			}
			L[i] = b.InputCap
			res.BufInCap += b.InputCap
			res.BufIntCap += b.InternalCap
			res.LeakageTot += b.Leakage
			res.BufferCount++
		case t.IsLeaf(i):
			L[i] = t.Sinks[nd.SinkIdx].Cap
			res.SinkCap += L[i]
		}
	}
	t.PostOrder(func(v int) {
		nd := &t.Nodes[v]
		D[v] = L[v] + edgeC[v]/2
		if nd.BufIdx != ctree.NoBuf {
			// Children belong to v's own (new) stage; accumulate its load.
			load := 0.0
			for _, k := range nd.Kids {
				if k != ctree.NoNode {
					load += D[k] + edgeC[k]/2
				}
			}
			res.StageCap[v] = load
			return
		}
		for _, k := range nd.Kids {
			if k != ctree.NoNode {
				D[v] += D[k] + edgeC[k]/2
			}
		}
	})

	rcSpan.End()

	// Timing, one pre-order pass. elm[v] is the Elmore delay from the
	// owning stage driver's output pin to v; stageOutArr/stageOutSlew are
	// indexed by driver node.
	propSpan := tr.Start("propagate")
	elm := make([]float64, n)
	stageOutArr := make(map[int]float64, len(res.StageCap))
	stageOutSlew := make(map[int]float64, len(res.StageCap))
	drv := make([]int, n)
	var fail error
	startStage := func(v int) {
		b := &lib.Buffers[t.Nodes[v].BufIdx]
		load := res.StageCap[v]
		d := b.DelayAt(res.Slew[v], load)
		if ov != nil && ov.BufScale != nil {
			d *= ov.BufScale[v]
		}
		stageOutArr[v] = res.Arrival[v] + d
		stageOutSlew[v] = b.OutSlewAt(res.Slew[v], load)
	}
	res.Arrival[t.Root] = 0
	res.Slew[t.Root] = inSlew
	drv[t.Root] = t.Root
	startStage(t.Root)
	t.PreOrder(func(v int) {
		if fail != nil || v == t.Root {
			return
		}
		p := t.Nodes[v].Parent
		var d int
		var base float64
		if t.Nodes[p].BufIdx != ctree.NoBuf {
			d = p
			base = 0
		} else {
			d = drv[p]
			base = elm[p]
		}
		drv[v] = d
		elm[v] = base + edgeR[v]*D[v]
		res.Arrival[v] = stageOutArr[d] + elm[v]
		res.Slew[v] = math.Hypot(stageOutSlew[d], rctree.Ln9*elm[v])
		if t.Nodes[v].BufIdx != ctree.NoBuf {
			startStage(v)
		}
	})
	if fail != nil {
		propSpan.End()
		return nil, fail
	}
	for i := range t.Nodes {
		if t.Nodes[i].SinkIdx != ctree.NoSink {
			res.sinkNodes = append(res.sinkNodes, i)
		}
	}
	res.DownCap = D
	propSpan.End()
	return res, nil
}

// TotalSwitchedCap returns the capacitance toggling every clock cycle:
// wire, sink pins, buffer inputs, and buffer internal cap.
func (r *Result) TotalSwitchedCap() float64 {
	return r.WireCap + r.SinkCap + r.BufInCap + r.BufIntCap
}
