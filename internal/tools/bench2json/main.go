// Command bench2json converts `go test -bench -benchmem` text output on
// stdin into a JSON benchmark report on stdout (or -out FILE). It exists
// so `make bench-json` can persist perf trajectories (BENCH_PR2.json,
// ...) in a machine-diffable form without external tooling.
//
// Input lines like
//
//	BenchmarkMonteCarlo4Workers-8   5   29671787 ns/op   723744 B/op   374 allocs/op
//
// become
//
//	{"name":"MonteCarlo4Workers","procs":8,"iterations":5,
//	 "ns_per_op":29671787,"bytes_per_op":723744,"allocs_per_op":374}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Package    string   `json:"package,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		// Expect: name iters ns "ns/op" [bytes "B/op" allocs "allocs/op"]
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		res := Result{Name: strings.TrimPrefix(f[0], "Benchmark")}
		if dash := strings.LastIndex(res.Name, "-"); dash > 0 {
			if p, err := strconv.Atoi(res.Name[dash+1:]); err == nil {
				res.Procs = p
				res.Name = res.Name[:dash]
			}
		}
		var err error
		if res.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			continue
		}
		if res.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return rep, nil
}
