package smartndr_test

import (
	"context"
	"testing"

	"smartndr"
	"smartndr/internal/tech"
	"smartndr/internal/testutil"
)

func TestFlowEndToEnd(t *testing.T) {
	bm := testutil.SmallBench(t, 200, 2500)
	flow, built := testutil.BuildFlow(t, nil, bm)
	if built.Buffers < 1 || built.NumClusters < 2 {
		t.Fatalf("implausible build: %+v", built)
	}

	results := map[smartndr.Scheme]*smartndr.Result{}
	for _, s := range []smartndr.Scheme{
		smartndr.SchemeAllDefault, smartndr.SchemeBlanket, smartndr.SchemeTopK, smartndr.SchemeSmart,
	} {
		results[s] = testutil.Apply(t, flow, built, s)
	}

	te := flow.Config().Tech
	smart := results[smartndr.SchemeSmart]
	blanket := results[smartndr.SchemeBlanket]
	def := results[smartndr.SchemeAllDefault]

	// The headline claim: smart ≤ blanket power, with constraints met.
	if smart.Metrics.Power.Total() >= blanket.Metrics.Power.Total() {
		t.Errorf("smart %.3f mW not below blanket %.3f mW",
			smart.Metrics.Power.Total()*1e3, blanket.Metrics.Power.Total()*1e3)
	}
	if smart.Metrics.SlewViol != 0 {
		t.Errorf("smart has %d slew violations", smart.Metrics.SlewViol)
	}
	if smart.Metrics.Skew > te.MaxSkew {
		t.Errorf("smart skew %.2f ps over bound", smart.Metrics.Skew*1e12)
	}
	// All-default is cheapest (it ignores constraints).
	if def.Metrics.Power.Total() > blanket.Metrics.Power.Total() {
		t.Error("all-default should be cheaper than blanket")
	}
	if smart.Stats == nil || smart.Stats.Downgrades == 0 {
		t.Error("smart stats missing or empty")
	}
	// Schemes must not share tree storage.
	if &smart.Tree.Nodes[0] == &blanket.Tree.Nodes[0] {
		t.Error("scheme results alias the same tree")
	}
	// The built tree must be untouched (still blanket).
	for i := range built.Tree.Nodes {
		if built.Tree.Nodes[i].Rule != te.BlanketRule {
			t.Fatal("Apply mutated the built tree")
		}
	}
}

func TestFlowTopKSweepMonotone(t *testing.T) {
	bm := testutil.SmallBench(t, 150, 2000)
	flow, built := testutil.BuildFlow(t, nil, bm)
	maxK := flow.MaxTopK(built)
	if maxK < 2 {
		t.Fatalf("MaxTopK = %d", maxK)
	}
	prev := -1.0
	for k := 0; k <= maxK; k++ {
		r, err := flow.ApplyTopK(built, k)
		if err != nil {
			t.Fatal(err)
		}
		cap := r.Metrics.SwitchedCap
		if cap < prev {
			t.Errorf("k=%d: cap %.3f pF decreased from %.3f (more NDR cannot cost less)",
				k, cap*1e12, prev*1e12)
		}
		prev = cap
	}
}

func TestFlowDefaults(t *testing.T) {
	f := smartndr.NewFlow(nil)
	cfg := f.Config()
	if cfg.Tech == nil || cfg.Library == nil || cfg.TopK != 2 || cfg.InSlew != 40e-12 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	f65 := smartndr.NewFlow(&smartndr.FlowConfig{Tech: tech.Tech65()})
	if f65.Config().Library.Name != "clkbuf65" {
		t.Errorf("tech65 should pick the 65 nm library, got %s", f65.Config().Library.Name)
	}
}

func TestFlowErrors(t *testing.T) {
	flow := smartndr.NewFlow(nil)
	if _, err := flow.Build(nil, smartndr.Point{}); err == nil {
		t.Error("empty sinks must fail")
	}
	if _, err := flow.Apply(nil, smartndr.SchemeSmart); err == nil {
		t.Error("nil built must fail")
	}
	bm := testutil.SmallBench(t, 10, 100)
	_, built := testutil.BuildFlow(t, nil, bm)
	if _, err := flow.Apply(built, smartndr.Scheme(99)); err == nil {
		t.Error("unknown scheme must fail")
	}
}

func TestBenchmarkLookup(t *testing.T) {
	bm := testutil.Named(t, "cns01")
	if len(bm.Sinks) != 1200 {
		t.Errorf("cns01 sinks = %d", len(bm.Sinks))
	}
	if _, err := smartndr.Benchmark("nope"); err == nil {
		t.Error("unknown benchmark must fail")
	}
	if len(smartndr.Suite()) != 8 {
		t.Error("suite size")
	}
}

func TestSchemeString(t *testing.T) {
	want := map[smartndr.Scheme]string{
		smartndr.SchemeAllDefault: "all-default",
		smartndr.SchemeBlanket:    "blanket-ndr",
		smartndr.SchemeTopK:       "top-k",
		smartndr.SchemeSmart:      "smart-ndr",
		smartndr.SchemeTrunk:      "trunk-ndr",
		smartndr.Scheme(9):        "scheme(9)",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), got, name)
		}
	}
}

func TestDefaultLibraryFor(t *testing.T) {
	cases := []struct {
		name string
		te   *smartndr.Tech
		want string
	}{
		{"nil tech", nil, "clkbuf45"},
		{"tech45 preset", tech.Tech45(), "clkbuf45"},
		{"tech65 preset", tech.Tech65(), "clkbuf65"},
		// The regression NewFlow used to miss: a 65 nm-class technology
		// whose name is not literally "tech65" must still get the 65 nm
		// library, keyed by Node rather than string matching.
		{"renamed 65 nm tech", renamedTech(tech.Tech65(), "my_foundry_65lp"), "clkbuf65"},
		{"renamed 45 nm tech", renamedTech(tech.Tech45(), "my_foundry_45gp"), "clkbuf45"},
		// Legacy values with Node unset fall back to the name.
		{"legacy tech65 name", legacyTech(tech.Tech65()), "clkbuf65"},
		{"legacy custom name", renamedTech(legacyTech(tech.Tech65()), "custom"), "clkbuf45"},
	}
	for _, c := range cases {
		if got := smartndr.DefaultLibraryFor(c.te).Name; got != c.want {
			t.Errorf("%s: library = %s, want %s", c.name, got, c.want)
		}
		if c.te == nil {
			continue
		}
		f := smartndr.NewFlow(&smartndr.FlowConfig{Tech: c.te})
		if got := f.Config().Library.Name; got != c.want {
			t.Errorf("%s: NewFlow library = %s, want %s", c.name, got, c.want)
		}
	}
}

func renamedTech(te *smartndr.Tech, name string) *smartndr.Tech {
	te.Name = name
	return te
}

func legacyTech(te *smartndr.Tech) *smartndr.Tech {
	te.Node = 0
	return te
}

func TestApplyTopKZeroIsAllDefault(t *testing.T) {
	bm := testutil.SmallBench(t, 120, 1800)
	flow, built := testutil.BuildFlow(t, nil, bm)
	zero, err := flow.ApplyTopK(built, 0)
	if err != nil {
		t.Fatal(err)
	}
	def := testutil.Apply(t, flow, built, smartndr.SchemeAllDefault)
	if zero.Metrics.Power.Total() != def.Metrics.Power.Total() ||
		zero.Metrics.SwitchedCap != def.Metrics.SwitchedCap ||
		zero.Metrics.Skew != def.Metrics.Skew ||
		zero.Metrics.NDRFraction != def.Metrics.NDRFraction {
		t.Errorf("ApplyTopK(b, 0) metrics differ from SchemeAllDefault:\n%+v\n%+v",
			zero.Metrics, def.Metrics)
	}
	if zero.Metrics.NDRFraction != 0 {
		t.Errorf("K=0 should route everything on the default rule, NDR fraction %.3f",
			zero.Metrics.NDRFraction)
	}
	if _, err := flow.ApplyTopK(nil, 1); err == nil {
		t.Error("nil built must fail")
	}
}

// TestFlowApplyCloneIsolation pins down that Apply and ApplyTopK never
// mutate the Built tree, whatever scheme runs: every rule assignment in
// the built tree must match the pre-Apply snapshot afterwards.
func TestFlowApplyCloneIsolation(t *testing.T) {
	bm := testutil.SmallBench(t, 100, 1500)
	flow, built := testutil.BuildFlow(t, nil, bm)
	snapshot := make([]int, len(built.Tree.Nodes))
	for i := range built.Tree.Nodes {
		snapshot[i] = built.Tree.Nodes[i].Rule
	}
	check := func(label string) {
		t.Helper()
		if len(built.Tree.Nodes) != len(snapshot) {
			t.Fatalf("%s: node count changed", label)
		}
		for i := range built.Tree.Nodes {
			if built.Tree.Nodes[i].Rule != snapshot[i] {
				t.Fatalf("%s mutated built tree at node %d", label, i)
			}
		}
	}
	for _, s := range []smartndr.Scheme{
		smartndr.SchemeAllDefault, smartndr.SchemeBlanket, smartndr.SchemeTopK,
		smartndr.SchemeTrunk, smartndr.SchemeSmart,
	} {
		testutil.Apply(t, flow, built, s)
		check(s.String())
	}
	if _, err := flow.ApplyTopK(built, 3); err != nil {
		t.Fatal(err)
	}
	check("ApplyTopK")
}

// TestFlowTracing drives the flow through the public tracing surface and
// checks the recorded spans cover build, apply, and the metrics snapshot.
func TestFlowTracing(t *testing.T) {
	bm := testutil.SmallBench(t, 100, 1500)
	col := smartndr.NewTraceCollector()
	tracer := smartndr.NewTracer(col)
	flow, built := testutil.BuildFlow(t, &smartndr.FlowConfig{Tracer: tracer}, bm)
	testutil.Apply(t, flow, built, smartndr.SchemeSmart)
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	for _, ev := range col.Events() {
		paths[ev.Span] = true
	}
	for _, want := range []string{
		"flow.build",
		"flow.build/cts.build",
		"flow.build/cts.build/cluster",
		"flow.apply",
		"flow.apply/core.optimize",
		"flow.apply/core.evaluate/sta.analyze",
		"metrics",
	} {
		if !paths[want] {
			t.Errorf("span %q missing; got %v", want, paths)
		}
	}
}

func TestFlowTimingAndMonteCarlo(t *testing.T) {
	bm := testutil.SmallBench(t, 80, 1200)
	flow, built := testutil.BuildFlow(t, nil, bm)
	res := testutil.Apply(t, flow, built, smartndr.SchemeSmart)
	timing, err := flow.Timing(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if timing.BufferCount != res.Metrics.Buffers {
		t.Error("timing and metrics disagree on buffers")
	}
	p := smartndr.VariationParams{WidthSigma: 0.004, BufSigma: 0.02, SpatialFrac: 0.5, Samples: 10, Seed: 3}
	mc, err := flow.MonteCarlo(res.Tree, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Samples) != 10 {
		t.Errorf("samples = %d", len(mc.Samples))
	}
}

func TestFlowRepairSkewPublic(t *testing.T) {
	bm := testutil.SmallBench(t, 60, 1000)
	flow, built := testutil.BuildFlow(t, nil, bm)
	r := testutil.Apply(t, flow, built, smartndr.SchemeBlanket)
	if err := flow.RepairSkew(r.Tree, flow.Config().Tech.MaxSkew); err != nil {
		t.Fatal(err)
	}
	m, err := flow.Evaluate(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if m.Skew > flow.Config().Tech.MaxSkew {
		t.Errorf("post-repair skew %.2f ps over bound", m.Skew*1e12)
	}
}

func TestFlowEMAndCorners(t *testing.T) {
	bm := testutil.SmallBench(t, 120, 1800)
	flow, built := testutil.BuildFlow(t, nil, bm)
	r := testutil.Apply(t, flow, built, smartndr.SchemeSmart)
	viols, err := flow.AuditEM(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := flow.EnforceEM(r.Tree); err != nil || n != len(viols) {
		t.Fatalf("EnforceEM n=%d err=%v (audited %d)", n, err, len(viols))
	}
	rep, err := flow.EvaluateCorners(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corners) != 3 {
		t.Errorf("corners = %d", len(rep.Corners))
	}
}

func TestFlowRealizeSchedule(t *testing.T) {
	bm := testutil.SmallBench(t, 80, 1200)
	flow, built := testutil.BuildFlow(t, nil, bm)
	r := testutil.Apply(t, flow, built, smartndr.SchemeBlanket)
	targets := make([]float64, len(bm.Sinks)) // zero schedule == plain balance
	if err := flow.RealizeSchedule(r.Tree, targets, flow.Config().Tech.MaxSkew); err != nil {
		t.Fatal(err)
	}
	m, err := flow.Evaluate(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if m.Skew > flow.Config().Tech.MaxSkew {
		t.Errorf("zero schedule should equal skew balance: %.2f ps", m.Skew*1e12)
	}
}

func TestFlowMonteCarloWorkersInvariance(t *testing.T) {
	// FlowConfig.Workers is a pure throughput knob: the Monte Carlo
	// substream determinism makes results identical at any setting.
	bm := testutil.SmallBench(t, 120, 1500)
	serial, built := testutil.BuildFlow(t, &smartndr.FlowConfig{Workers: 1}, bm)
	parallel := smartndr.NewFlow(&smartndr.FlowConfig{Workers: 8})
	p := smartndr.VariationParams{WidthSigma: 0.004, BufSigma: 0.03, SpatialFrac: 0.6, Samples: 30, Seed: 11}
	a, err := serial.MonteCarlo(built.Tree, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.MonteCarlo(built.Tree, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs across worker counts", i)
		}
	}
	if a.P95Skew != b.P95Skew || a.MeanSkew != b.MeanSkew {
		t.Error("summary stats differ across worker counts")
	}
}

// TestFlowRunSpec exercises the context-accepting one-call entry point:
// a background context runs the full pipeline, a cancelled context is
// refused at the first phase boundary, and the result matches the
// step-by-step form bit for bit.
func TestFlowRunSpec(t *testing.T) {
	spec := testutil.UniformSpec("runspec", 120, 1800, 42)
	flow := smartndr.NewFlow(nil)
	built, res, err := flow.RunSpec(context.Background(), spec, smartndr.SchemeSmart)
	if err != nil {
		t.Fatal(err)
	}
	if built == nil || res == nil || res.Stats == nil {
		t.Fatal("RunSpec returned incomplete results")
	}
	manual := testutil.RunScheme(t, nil, testutil.Gen(t, spec), smartndr.SchemeSmart)
	if res.Metrics.Power.Total() != manual.Metrics.Power.Total() ||
		res.Metrics.Skew != manual.Metrics.Skew ||
		res.Metrics.SwitchedCap != manual.Metrics.SwitchedCap ||
		res.Metrics.Wirelength != manual.Metrics.Wirelength {
		t.Errorf("RunSpec metrics differ from manual pipeline:\n%+v\n%+v",
			res.Metrics, manual.Metrics)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := flow.RunSpec(cancelled, spec, smartndr.SchemeSmart); err == nil {
		t.Error("cancelled context must fail")
	}
	bad := spec
	bad.Sinks = 0
	if _, _, err := flow.RunSpec(context.Background(), bad, smartndr.SchemeSmart); err == nil {
		t.Error("invalid spec must fail")
	}
}

// TestFlowCanonicalKey pins the content-address contract: the key is
// stable across calls and flows, insensitive to instrumentation and
// throughput knobs, and sensitive to every result-determining input.
func TestFlowCanonicalKey(t *testing.T) {
	spec := testutil.UniformSpec("key", 100, 1500, 7)
	key := func(cfg *smartndr.FlowConfig, sp smartndr.BenchSpec, sc smartndr.Scheme) string {
		t.Helper()
		k, err := smartndr.NewFlow(cfg).CanonicalKey(sp, sc)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := key(nil, spec, smartndr.SchemeSmart)
	if base == "" || base != key(nil, spec, smartndr.SchemeSmart) {
		t.Fatal("key not stable across flows")
	}
	// Tracer and Workers are non-semantic: results are bit-identical, so
	// the content address must collapse them.
	traced := key(&smartndr.FlowConfig{
		Tracer: smartndr.NewTracer(smartndr.NewTraceCollector()), Workers: 8,
	}, spec, smartndr.SchemeSmart)
	if traced != base {
		t.Error("tracer/workers changed the canonical key")
	}
	// Every semantic input must move it.
	if key(nil, spec, smartndr.SchemeBlanket) == base {
		t.Error("scheme not in the key")
	}
	other := spec
	other.Seed++
	if key(nil, other, smartndr.SchemeSmart) == base {
		t.Error("spec seed not in the key")
	}
	if key(&smartndr.FlowConfig{Tech: tech.Tech65()}, spec, smartndr.SchemeSmart) == base {
		t.Error("technology not in the key")
	}
	if key(&smartndr.FlowConfig{TopK: 3}, spec, smartndr.SchemeSmart) == base {
		t.Error("TopK not in the key")
	}
	if key(&smartndr.FlowConfig{InSlew: 50e-12}, spec, smartndr.SchemeSmart) == base {
		t.Error("InSlew not in the key")
	}
	if key(&smartndr.FlowConfig{Hier: smartndr.HierConfig{MaxRegionSinks: 500}}, spec, smartndr.SchemeSmart) == base {
		t.Error("hier config not in the key")
	}
}

// TestFlowRunSpecHierDispatch pins the size gate: with Hier enabled,
// specs over the region bound take the partitioned pipeline and specs
// under it still build flat — and the hierarchical path produces a valid
// scheme result with in-budget skew.
func TestFlowRunSpecHierDispatch(t *testing.T) {
	cfg := &smartndr.FlowConfig{Hier: smartndr.HierConfig{MaxRegionSinks: 400}}
	flow := smartndr.NewFlow(cfg)

	// Flat path clones the built tree per scheme; the hier path returns
	// one fused tree. That distinction is the dispatch witness.
	small := testutil.UniformSpec("hier-small", 120, 1500, 3)
	builtS, resS, err := flow.RunSpec(context.Background(), small, smartndr.SchemeSmart)
	if err != nil {
		t.Fatal(err)
	}
	if builtS.Tree == resS.Tree {
		t.Fatal("small spec took the hierarchical path; want flat")
	}

	big := testutil.UniformSpec("hier-big", 1600, 4000, 9)
	built, res, err := flow.RunSpec(context.Background(), big, smartndr.SchemeSmart)
	if err != nil {
		t.Fatal(err)
	}
	if built.Tree != res.Tree {
		t.Fatal("big spec must return one fused tree for Built and Result (hier path)")
	}
	if built.NumClusters < 2 {
		t.Fatalf("big spec yielded %d regions; expected a partition", built.NumClusters)
	}
	if res.Stats == nil || res.Stats.Downgrades == 0 {
		t.Error("hier smart run reported no optimization")
	}
	te := flow.Config().Tech
	if res.Metrics.Skew > te.MaxSkew {
		t.Errorf("hier skew %.2f ps over budget %.2f ps", res.Metrics.Skew*1e12, te.MaxSkew*1e12)
	}
	// The blanket scheme must run hierarchically too, without stats.
	_, bres, err := flow.RunSpec(context.Background(), big, smartndr.SchemeBlanket)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Stats != nil {
		t.Error("blanket hier run carries optimizer stats")
	}
	if res.Metrics.SwitchedCap >= bres.Metrics.SwitchedCap {
		t.Error("smart hier run did not reduce switched capacitance vs blanket")
	}
}
