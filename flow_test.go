package smartndr

import (
	"testing"

	"smartndr/internal/tech"
	"smartndr/internal/workload"
)

// smallBench generates a quick benchmark for facade tests.
func smallBench(t testing.TB, n int, die float64) *workload.Benchmark {
	t.Helper()
	bm, err := GenerateBenchmark(BenchSpec{
		Name: "t", Dist: workload.Uniform, Sinks: n, DieX: die, DieY: die,
		CapMin: 1e-15, CapMax: 3e-15, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bm
}

func TestFlowEndToEnd(t *testing.T) {
	bm := smallBench(t, 200, 2500)
	flow := NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	if built.Buffers < 1 || built.NumClusters < 2 {
		t.Fatalf("implausible build: %+v", built)
	}

	results := map[Scheme]*Result{}
	for _, s := range []Scheme{SchemeAllDefault, SchemeBlanket, SchemeTopK, SchemeSmart} {
		r, err := flow.Apply(built, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		results[s] = r
	}

	te := flow.Config().Tech
	smart := results[SchemeSmart]
	blanket := results[SchemeBlanket]
	def := results[SchemeAllDefault]

	// The headline claim: smart ≤ blanket power, with constraints met.
	if smart.Metrics.Power.Total() >= blanket.Metrics.Power.Total() {
		t.Errorf("smart %.3f mW not below blanket %.3f mW",
			smart.Metrics.Power.Total()*1e3, blanket.Metrics.Power.Total()*1e3)
	}
	if smart.Metrics.SlewViol != 0 {
		t.Errorf("smart has %d slew violations", smart.Metrics.SlewViol)
	}
	if smart.Metrics.Skew > te.MaxSkew {
		t.Errorf("smart skew %.2f ps over bound", smart.Metrics.Skew*1e12)
	}
	// All-default is cheapest (it ignores constraints).
	if def.Metrics.Power.Total() > blanket.Metrics.Power.Total() {
		t.Error("all-default should be cheaper than blanket")
	}
	if smart.Stats == nil || smart.Stats.Downgrades == 0 {
		t.Error("smart stats missing or empty")
	}
	// Schemes must not share tree storage.
	if &smart.Tree.Nodes[0] == &blanket.Tree.Nodes[0] {
		t.Error("scheme results alias the same tree")
	}
	// The built tree must be untouched (still blanket).
	for i := range built.Tree.Nodes {
		if built.Tree.Nodes[i].Rule != te.BlanketRule {
			t.Fatal("Apply mutated the built tree")
		}
	}
}

func TestFlowTopKSweepMonotone(t *testing.T) {
	bm := smallBench(t, 150, 2000)
	flow := NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	maxK := flow.MaxTopK(built)
	if maxK < 2 {
		t.Fatalf("MaxTopK = %d", maxK)
	}
	prev := -1.0
	for k := 0; k <= maxK; k++ {
		r, err := flow.ApplyTopK(built, k)
		if err != nil {
			t.Fatal(err)
		}
		cap := r.Metrics.SwitchedCap
		if cap < prev {
			t.Errorf("k=%d: cap %.3f pF decreased from %.3f (more NDR cannot cost less)",
				k, cap*1e12, prev*1e12)
		}
		prev = cap
	}
}

func TestFlowDefaults(t *testing.T) {
	f := NewFlow(nil)
	cfg := f.Config()
	if cfg.Tech == nil || cfg.Library == nil || cfg.TopK != 2 || cfg.InSlew != 40e-12 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	f65 := NewFlow(&FlowConfig{Tech: tech.Tech65()})
	if f65.Config().Library.Name != "clkbuf65" {
		t.Errorf("tech65 should pick the 65 nm library, got %s", f65.Config().Library.Name)
	}
}

func TestFlowErrors(t *testing.T) {
	flow := NewFlow(nil)
	if _, err := flow.Build(nil, Point{}); err == nil {
		t.Error("empty sinks must fail")
	}
	if _, err := flow.Apply(nil, SchemeSmart); err == nil {
		t.Error("nil built must fail")
	}
	bm := smallBench(t, 10, 100)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.Apply(built, Scheme(99)); err == nil {
		t.Error("unknown scheme must fail")
	}
}

func TestBenchmarkLookup(t *testing.T) {
	bm, err := Benchmark("cns01")
	if err != nil {
		t.Fatal(err)
	}
	if len(bm.Sinks) != 1200 {
		t.Errorf("cns01 sinks = %d", len(bm.Sinks))
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Error("unknown benchmark must fail")
	}
	if len(Suite()) != 8 {
		t.Error("suite size")
	}
}

func TestSchemeString(t *testing.T) {
	want := map[Scheme]string{
		SchemeAllDefault: "all-default",
		SchemeBlanket:    "blanket-ndr",
		SchemeTopK:       "top-k",
		SchemeSmart:      "smart-ndr",
		SchemeTrunk:      "trunk-ndr",
		Scheme(9):        "scheme(9)",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), got, name)
		}
	}
}

func TestDefaultLibraryFor(t *testing.T) {
	cases := []struct {
		name string
		te   *Tech
		want string
	}{
		{"nil tech", nil, "clkbuf45"},
		{"tech45 preset", tech.Tech45(), "clkbuf45"},
		{"tech65 preset", tech.Tech65(), "clkbuf65"},
		// The regression NewFlow used to miss: a 65 nm-class technology
		// whose name is not literally "tech65" must still get the 65 nm
		// library, keyed by Node rather than string matching.
		{"renamed 65 nm tech", renamedTech(tech.Tech65(), "my_foundry_65lp"), "clkbuf65"},
		{"renamed 45 nm tech", renamedTech(tech.Tech45(), "my_foundry_45gp"), "clkbuf45"},
		// Legacy values with Node unset fall back to the name.
		{"legacy tech65 name", legacyTech(tech.Tech65()), "clkbuf65"},
		{"legacy custom name", renamedTech(legacyTech(tech.Tech65()), "custom"), "clkbuf45"},
	}
	for _, c := range cases {
		if got := DefaultLibraryFor(c.te).Name; got != c.want {
			t.Errorf("%s: library = %s, want %s", c.name, got, c.want)
		}
		if c.te == nil {
			continue
		}
		f := NewFlow(&FlowConfig{Tech: c.te})
		if got := f.Config().Library.Name; got != c.want {
			t.Errorf("%s: NewFlow library = %s, want %s", c.name, got, c.want)
		}
	}
}

func renamedTech(te *Tech, name string) *Tech {
	te.Name = name
	return te
}

func legacyTech(te *Tech) *Tech {
	te.Node = 0
	return te
}

func TestApplyTopKZeroIsAllDefault(t *testing.T) {
	bm := smallBench(t, 120, 1800)
	flow := NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := flow.ApplyTopK(built, 0)
	if err != nil {
		t.Fatal(err)
	}
	def, err := flow.Apply(built, SchemeAllDefault)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Metrics.Power.Total() != def.Metrics.Power.Total() ||
		zero.Metrics.SwitchedCap != def.Metrics.SwitchedCap ||
		zero.Metrics.Skew != def.Metrics.Skew ||
		zero.Metrics.NDRFraction != def.Metrics.NDRFraction {
		t.Errorf("ApplyTopK(b, 0) metrics differ from SchemeAllDefault:\n%+v\n%+v",
			zero.Metrics, def.Metrics)
	}
	if zero.Metrics.NDRFraction != 0 {
		t.Errorf("K=0 should route everything on the default rule, NDR fraction %.3f",
			zero.Metrics.NDRFraction)
	}
	if _, err := flow.ApplyTopK(nil, 1); err == nil {
		t.Error("nil built must fail")
	}
}

// TestFlowApplyCloneIsolation pins down that Apply and ApplyTopK never
// mutate the Built tree, whatever scheme runs: every rule assignment in
// the built tree must match the pre-Apply snapshot afterwards.
func TestFlowApplyCloneIsolation(t *testing.T) {
	bm := smallBench(t, 100, 1500)
	flow := NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]int, len(built.Tree.Nodes))
	for i := range built.Tree.Nodes {
		snapshot[i] = built.Tree.Nodes[i].Rule
	}
	check := func(label string) {
		t.Helper()
		if len(built.Tree.Nodes) != len(snapshot) {
			t.Fatalf("%s: node count changed", label)
		}
		for i := range built.Tree.Nodes {
			if built.Tree.Nodes[i].Rule != snapshot[i] {
				t.Fatalf("%s mutated built tree at node %d", label, i)
			}
		}
	}
	for _, s := range []Scheme{SchemeAllDefault, SchemeBlanket, SchemeTopK, SchemeTrunk, SchemeSmart} {
		if _, err := flow.Apply(built, s); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		check(s.String())
	}
	if _, err := flow.ApplyTopK(built, 3); err != nil {
		t.Fatal(err)
	}
	check("ApplyTopK")
}

// TestFlowTracing drives the flow through the public tracing surface and
// checks the recorded spans cover build, apply, and the metrics snapshot.
func TestFlowTracing(t *testing.T) {
	bm := smallBench(t, 100, 1500)
	col := NewTraceCollector()
	tracer := NewTracer(col)
	flow := NewFlow(&FlowConfig{Tracer: tracer})
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.Apply(built, SchemeSmart); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	for _, ev := range col.Events() {
		paths[ev.Span] = true
	}
	for _, want := range []string{
		"flow.build",
		"flow.build/cts.build",
		"flow.build/cts.build/cluster",
		"flow.apply",
		"flow.apply/core.optimize",
		"flow.apply/core.evaluate/sta.analyze",
		"metrics",
	} {
		if !paths[want] {
			t.Errorf("span %q missing; got %v", want, paths)
		}
	}
}

func TestFlowTimingAndMonteCarlo(t *testing.T) {
	bm := smallBench(t, 80, 1200)
	flow := NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := flow.Apply(built, SchemeSmart)
	if err != nil {
		t.Fatal(err)
	}
	timing, err := flow.Timing(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if timing.BufferCount != res.Metrics.Buffers {
		t.Error("timing and metrics disagree on buffers")
	}
	p := VariationParams{WidthSigma: 0.004, BufSigma: 0.02, SpatialFrac: 0.5, Samples: 10, Seed: 3}
	mc, err := flow.MonteCarlo(res.Tree, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Samples) != 10 {
		t.Errorf("samples = %d", len(mc.Samples))
	}
}

func TestFlowRepairSkewPublic(t *testing.T) {
	bm := smallBench(t, 60, 1000)
	flow := NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := flow.Apply(built, SchemeBlanket)
	if err != nil {
		t.Fatal(err)
	}
	if err := flow.RepairSkew(r.Tree, flow.Config().Tech.MaxSkew); err != nil {
		t.Fatal(err)
	}
	m, err := flow.Evaluate(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if m.Skew > flow.Config().Tech.MaxSkew {
		t.Errorf("post-repair skew %.2f ps over bound", m.Skew*1e12)
	}
}

func TestFlowEMAndCorners(t *testing.T) {
	bm := smallBench(t, 120, 1800)
	flow := NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := flow.Apply(built, SchemeSmart)
	if err != nil {
		t.Fatal(err)
	}
	viols, err := flow.AuditEM(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := flow.EnforceEM(r.Tree); err != nil || n != len(viols) {
		t.Fatalf("EnforceEM n=%d err=%v (audited %d)", n, err, len(viols))
	}
	rep, err := flow.EvaluateCorners(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corners) != 3 {
		t.Errorf("corners = %d", len(rep.Corners))
	}
}

func TestFlowRealizeSchedule(t *testing.T) {
	bm := smallBench(t, 80, 1200)
	flow := NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := flow.Apply(built, SchemeBlanket)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]float64, len(bm.Sinks)) // zero schedule == plain balance
	if err := flow.RealizeSchedule(r.Tree, targets, flow.Config().Tech.MaxSkew); err != nil {
		t.Fatal(err)
	}
	m, err := flow.Evaluate(r.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if m.Skew > flow.Config().Tech.MaxSkew {
		t.Errorf("zero schedule should equal skew balance: %.2f ps", m.Skew*1e12)
	}
}

func TestFlowMonteCarloWorkersInvariance(t *testing.T) {
	// FlowConfig.Workers is a pure throughput knob: the Monte Carlo
	// substream determinism makes results identical at any setting.
	bm := smallBench(t, 120, 1500)
	serial := NewFlow(&FlowConfig{Workers: 1})
	parallel := NewFlow(&FlowConfig{Workers: 8})
	built, err := serial.Build(bm.Sinks, bm.Src)
	if err != nil {
		t.Fatal(err)
	}
	p := VariationParams{WidthSigma: 0.004, BufSigma: 0.03, SpatialFrac: 0.6, Samples: 30, Seed: 11}
	a, err := serial.MonteCarlo(built.Tree, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.MonteCarlo(built.Tree, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs across worker counts", i)
		}
	}
	if a.P95Skew != b.P95Skew || a.MeanSkew != b.MeanSkew {
		t.Error("summary stats differ across worker counts")
	}
}
