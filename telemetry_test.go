package smartndr

import (
	"testing"

	"smartndr/internal/workload"
)

// TestSpanObserverRecordsFlowPhases runs a small flow with the
// histogram-aggregating sink and checks that each engine phase landed
// in a per-path latency distribution — the same wiring smartndrd uses
// to back /metricsz.
func TestSpanObserverRecordsFlowPhases(t *testing.T) {
	bm, err := GenerateBenchmark(BenchSpec{
		Name: "obs", Dist: workload.Uniform, Sinks: 64,
		DieX: 800, DieY: 640, CapMin: 1e-15, CapMax: 4e-15, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	spanObs := NewSpanObserver(nil)
	tr := NewTracer(spanObs)
	flow := NewFlow(&FlowConfig{Tracer: tr})
	built, err := flow.Build(bm.Sinks, Point{X: 400, Y: 320})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.Apply(built, SchemeSmart); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	snap := spanObs.Snapshot()
	for _, path := range []string{"flow.build", "flow.apply"} {
		h, ok := snap[path]
		if !ok {
			t.Fatalf("span observer missing %q; have %v", path, spanObs.Paths())
		}
		if h.Count != 1 || h.Sum < 0 {
			t.Errorf("%s histogram = count %d sum %g, want one non-negative duration", path, h.Count, h.Sum)
		}
	}
}

// TestNilTracerRecordsNothing pins the disabled form end to end:
// NewTracer(nil) is a nil tracer, every telemetry call on the nil
// chain is a no-op, and a flow run under it stays silent and correct.
func TestNilTracerRecordsNothing(t *testing.T) {
	tr := NewTracer(nil)
	if tr != nil {
		t.Fatal("NewTracer(nil) must return the nil (disabled) tracer")
	}
	// The whole nil chain is callable: tracer metrics, registry access,
	// histogram lookup, and observation all no-op.
	tr.Add("x.count", 1)
	tr.Gauge("x.level", 2)
	tr.Observe("x.seconds", 0.5)
	reg := tr.Registry()
	if reg != nil {
		t.Fatal("nil tracer must have a nil registry")
	}
	h := reg.Histogram("x.seconds")
	if h != nil {
		t.Fatal("nil registry must hand out a nil histogram")
	}
	h.Observe(1.0)
	if snap := h.Snapshot(); snap.Count != 0 || snap.Sum != 0 {
		t.Errorf("nil histogram snapshot = %+v, want empty", snap)
	}

	bm, err := GenerateBenchmark(BenchSpec{
		Name: "nil", Dist: workload.Uniform, Sinks: 48,
		DieX: 600, DieY: 480, CapMin: 1e-15, CapMax: 4e-15, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	flow := NewFlow(&FlowConfig{Tracer: tr})
	built, err := flow.Build(bm.Sinks, Point{X: 300, Y: 240})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.Apply(built, SchemeSmart); err != nil {
		t.Fatal(err)
	}
}
