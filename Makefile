GO ?= go

# Third-party analyzers CI runs alongside the in-repo suite. Pinned here
# (and mirrored in .github/workflows/ci.yml) because the module has no
# tool dependencies — `go run pkg@version` fetches exactly this version.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build check vet fmt lint lint-extra test race bench bench-smoke bench-scale bench-json cover fuzz-smoke cluster-smoke ci clean

# Coverage floor (percent) enforced on internal/serve — the service
# layer is pure coordination logic, so uncovered lines are usually
# unhandled error paths. Raise, don't lower.
SERVE_COVER_FLOOR ?= 85

# Per-target budget for the fuzz smoke pass.
FUZZTIME ?= 10s

all: check

build:
	$(GO) build ./...

check: vet fmt lint race

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting; prints the offenders.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The repo's own analyzer suite (internal/analysis, docs/static-analysis.md):
# maporder, seededrand, wallclock, spanhygiene, floatorder, metricname,
# httpbody, errcmp, gateleak, ctxflow. Must exit clean, and the whole run
# (package load + all ten analyzers) must stay under the 30 s budget —
# the canary for the `go list -e -deps -json` load path slowing down as
# the tree grows.
lint:
	$(GO) run ./cmd/smartndrlint -time -budget 30s ./...

# Third-party analyzers; needs network access to fetch the pinned tools,
# so it is a separate target rather than part of `lint`.
lint-extra:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration of every benchmark in the repo — catches benchmarks that
# no longer compile or crash, without paying for a measurement. CI runs
# this step. -short keeps the scale benchmarks out; bench-scale owns
# those.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x -short ./...

# One iteration of the 100K-sink hierarchical-flow benchmark — the scale
# path's CI canary (generation, partition, per-region smart builds,
# stitch, global balance; ~4 s on one core). The million-sink variant is
# opt-in: SMARTNDR_BENCH_1M=1 make bench-scale.
bench-scale:
	$(GO) test -run '^$$' -bench 'FlowSmart100K|FlowSmart1M' -benchtime=1x -benchmem .

# Machine-readable perf snapshot of the Monte Carlo worker-scaling, flow
# (including the 100K-sink hierarchical point), incremental-STA, and
# session benchmarks (see docs/performance.md). BENCH_PR10.json is
# committed so perf regressions diff in review; earlier snapshots
# (BENCH_PR2/PR3/PR7/PR8) stay as history.
bench-json:
	$(GO) test -bench='MonteCarlo|Flow|Optimize|RepairSkew|Session' -benchmem -run=^$$ . ./internal/core ./internal/serve \
		| $(GO) run ./internal/tools/bench2json -out BENCH_PR10.json
	@echo wrote BENCH_PR10.json

# Per-package coverage summary plus an enforced floor on internal/serve.
# Writes cover.out (uploaded as a CI artifact) and prints the func-level
# breakdown for the service package.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	@$(GO) tool cover -func=cover.out | grep '^smartndr/internal/serve/' || true
	@total="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}')"; \
	echo "total coverage: $$total%"
	@serve="$$($(GO) test -cover ./internal/serve/ | awk '{for(i=1;i<=NF;i++) if ($$i=="coverage:") {sub(/%/,"",$$(i+1)); print $$(i+1)}}')"; \
	echo "internal/serve coverage: $$serve% (floor $(SERVE_COVER_FLOOR)%)"; \
	awk -v c="$$serve" -v f="$(SERVE_COVER_FLOOR)" 'BEGIN { exit (c+0 >= f+0) ? 0 : 1 }' || \
		{ echo "internal/serve coverage $$serve% is below the $(SERVE_COVER_FLOOR)% floor"; exit 1; }

# Ten seconds of fuzzing per target — enough to shake out shallow
# decoder and canonicalization bugs on every CI run without burning
# minutes. `go test` allows one -fuzz pattern per invocation, hence one
# line per target. Corpus seeds live in testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFlowRequest$$' -fuzztime $(FUZZTIME) ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSweepRequest$$' -fuzztime $(FUZZTIME) ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeBatchRequest$$' -fuzztime $(FUZZTIME) ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSessionRequest$$' -fuzztime $(FUZZTIME) ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzSpecCanonical$$' -fuzztime $(FUZZTIME) ./internal/workload/
	$(GO) test -run '^$$' -fuzz '^FuzzDEFLiteChunked$$' -fuzztime $(FUZZTIME) ./internal/sio/

# The 3-node cluster differential smoke: a frontend sharding across two
# workers (HTTP and loopback transports) plus the full daemon fleet
# test must return single-node bytes on every endpoint, under -race.
# CI runs this as its own step so a cluster-layer regression is named
# in the job list, not buried in `race`.
cluster-smoke:
	$(GO) test -race -count=1 \
		-run 'TestClusterFlowByteIdenticalToSingleNode|TestClusterSweepByteIdenticalAtAnyWorkerCount|TestClusterBatchByteIdenticalToSingleNode|TestClusterSweepThroughputScales|TestClusterHedgingCutsTailLatency' \
		./internal/cluster/
	$(GO) test -race -count=1 -run 'TestDaemonClusterRoles' ./cmd/smartndrd/

# What CI runs (.github/workflows/ci.yml): everything check does plus a
# plain build, the full test suite, the benchmark smoke pass, the scale
# canary, the fuzz smoke pass, and the coverage floor. CI also runs
# lint-extra, which needs network access for the pinned tools.
ci: build vet fmt lint test race cluster-smoke bench-smoke bench-scale fuzz-smoke cover

clean:
	$(GO) clean ./...
