GO ?= go

.PHONY: all build check vet fmt test race bench clean

all: check

build:
	$(GO) build ./...

check: vet fmt race

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting; prints the offenders.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
