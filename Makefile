GO ?= go

.PHONY: all build check vet fmt test race bench bench-smoke bench-json ci clean

all: check

build:
	$(GO) build ./...

check: vet fmt race

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting; prints the offenders.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration of every benchmark in the repo — catches benchmarks that
# no longer compile or crash, without paying for a measurement. CI runs
# this step.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Machine-readable perf snapshot of the Monte Carlo worker-scaling, flow,
# and incremental-STA benchmarks (see docs/performance.md). BENCH_PR3.json
# is committed so perf regressions diff in review.
bench-json:
	$(GO) test -bench='MonteCarlo|Flow|Optimize|RepairSkew' -benchmem -run=^$$ . ./internal/core \
		| $(GO) run ./internal/tools/bench2json -out BENCH_PR3.json
	@echo wrote BENCH_PR3.json

# What CI runs (.github/workflows/ci.yml): everything check does plus a
# plain build, the full test suite, and the benchmark smoke pass.
ci: build vet fmt test race bench-smoke

clean:
	$(GO) clean ./...
