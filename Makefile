GO ?= go

.PHONY: all build check vet fmt test race bench bench-json ci clean

all: check

build:
	$(GO) build ./...

check: vet fmt race

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting; prints the offenders.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable perf snapshot of the Monte Carlo worker-scaling and
# flow benchmarks (see docs/performance.md). BENCH_PR2.json is committed
# so perf regressions diff in review.
bench-json:
	$(GO) test -bench='MonteCarlo|Flow' -benchmem -run=^$$ . \
		| $(GO) run ./internal/tools/bench2json -out BENCH_PR2.json
	@echo wrote BENCH_PR2.json

# What CI runs (.github/workflows/ci.yml): everything check does plus a
# plain build and the full test suite.
ci: build vet fmt test race

clean:
	$(GO) clean ./...
