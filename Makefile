GO ?= go

# Third-party analyzers CI runs alongside the in-repo suite. Pinned here
# (and mirrored in .github/workflows/ci.yml) because the module has no
# tool dependencies — `go run pkg@version` fetches exactly this version.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build check vet fmt lint lint-extra test race bench bench-smoke bench-json ci clean

all: check

build:
	$(GO) build ./...

check: vet fmt lint race

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting; prints the offenders.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The repo's own analyzer suite (internal/analysis, docs/static-analysis.md):
# maporder, seededrand, wallclock, spanhygiene, floatorder. Must exit clean.
lint:
	$(GO) run ./cmd/smartndrlint ./...

# Third-party analyzers; needs network access to fetch the pinned tools,
# so it is a separate target rather than part of `lint`.
lint-extra:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration of every benchmark in the repo — catches benchmarks that
# no longer compile or crash, without paying for a measurement. CI runs
# this step.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Machine-readable perf snapshot of the Monte Carlo worker-scaling, flow,
# and incremental-STA benchmarks (see docs/performance.md). BENCH_PR3.json
# is committed so perf regressions diff in review.
bench-json:
	$(GO) test -bench='MonteCarlo|Flow|Optimize|RepairSkew' -benchmem -run=^$$ . ./internal/core \
		| $(GO) run ./internal/tools/bench2json -out BENCH_PR3.json
	@echo wrote BENCH_PR3.json

# What CI runs (.github/workflows/ci.yml): everything check does plus a
# plain build, the full test suite, and the benchmark smoke pass. CI also
# runs lint-extra, which needs network access for the pinned tools.
ci: build vet fmt lint test race bench-smoke

clean:
	$(GO) clean ./...
