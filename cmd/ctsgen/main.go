// Command ctsgen generates clock-tree benchmarks as JSON files.
//
// Usage:
//
//	ctsgen -bench cns03 -o cns03.json          # built-in suite member
//	ctsgen -sinks 5000 -die 6000 -dist clustered -seed 7 -o my.json
package main

import (
	"flag"
	"fmt"
	"os"

	"smartndr/internal/sio"
	"smartndr/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "built-in benchmark name (cns01…cns08)")
	out := flag.String("o", "", "output JSON path (default <name>.json)")
	sinks := flag.Int("sinks", 2000, "sink count (custom spec)")
	die := flag.Float64("die", 5000, "die width in µm (height is 0.8×)")
	dist := flag.String("dist", "uniform", "distribution: uniform|clustered|perimeter|grid")
	seed := flag.Int64("seed", 1, "generator seed")
	name := flag.String("name", "custom", "benchmark name (custom spec)")
	format := flag.String("format", "json", "output format: json|def")
	flag.Parse()

	var spec workload.Spec
	if *bench != "" {
		s, err := workload.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		spec = s
	} else {
		d, err := parseDist(*dist)
		if err != nil {
			fatal(err)
		}
		spec = workload.Spec{
			Name: *name, Dist: d, Sinks: *sinks,
			DieX: *die, DieY: *die * 0.8,
			CapMin: 1e-15, CapMax: 4e-15, Seed: *seed,
		}
	}
	bm, err := workload.Generate(spec)
	if err != nil {
		fatal(err)
	}
	path := *out
	switch *format {
	case "json":
		if path == "" {
			path = spec.Name + ".json"
		}
		if err := sio.SaveJSON(path, bm); err != nil {
			fatal(err)
		}
	case "def":
		if path == "" {
			path = spec.Name + ".def"
		}
		if err := sio.WriteDEFLiteFile(path, bm); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	fmt.Printf("wrote %s: %d sinks, %.1f×%.1f mm die, %s distribution\n",
		path, len(bm.Sinks), spec.DieX/1000, spec.DieY/1000, spec.Dist)
}

func parseDist(s string) (workload.Distribution, error) {
	switch s {
	case "uniform":
		return workload.Uniform, nil
	case "clustered":
		return workload.Clustered, nil
	case "perimeter":
		return workload.Perimeter, nil
	case "grid":
		return workload.Grid, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctsgen:", err)
	os.Exit(1)
}
