package main

import "testing"

func TestParseDist(t *testing.T) {
	for _, name := range []string{"uniform", "clustered", "perimeter", "grid"} {
		if _, err := parseDist(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := parseDist("zigzag"); err == nil {
		t.Error("unknown distribution must fail")
	}
}
