// Command experiments regenerates the evaluation tables and figures (see
// DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-exp all|t1|t2|t3|f1|f2|f3|f4|a1|a2|a3] [-data DIR] [-quick]
//
// Tables render to stdout; with -data, the figure series are also written
// as CSV files into DIR. -timing prints a per-experiment phase breakdown
// to stderr, -trace streams every span as a JSONL event, and -pprof
// serves net/http/pprof for live profiling (see docs/observability.md).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"smartndr/internal/experiments"
	"smartndr/internal/obs"
	"smartndr/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	data := flag.String("data", "", "directory for CSV series (optional)")
	quick := flag.Bool("quick", false, "reduced workload sizes")
	workers := flag.Int("workers", 0, "parallel workers inside experiments (0 = all cores); >1 also runs independent experiments concurrently — tables are identical at any count")
	list := flag.Bool("list", false, "list experiments and exit")
	traceFile := flag.String("trace", "", "write span events as JSON lines to this file")
	timing := flag.Bool("timing", false, "print a phase-timing breakdown to stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}
	if *data != "" {
		if err := os.MkdirAll(*data, 0o755); err != nil {
			fatal(err)
		}
	}
	startPprof(*pprofAddr)
	tracer, collector, closeTrace, err := setupTracing(*traceFile, *timing)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := closeTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: trace:", err)
		}
		if collector != nil {
			tb := report.TimingTable("phase timing", collector.Events())
			fmt.Fprintln(os.Stderr)
			if err := tb.Render(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: timing:", err)
			}
		}
	}()

	opt := experiments.Options{Out: os.Stdout, DataDir: *data, Quick: *quick, Tracer: tracer, Workers: *workers}
	if *exp == "all" {
		if err := experiments.All(opt); err != nil {
			fatal(err)
		}
		return
	}
	r, err := experiments.ByID(*exp)
	if err != nil {
		fatal(err)
	}
	if err := experiments.RunOne(r, opt); err != nil {
		fatal(err)
	}
}

// setupTracing builds the tracer for the requested outputs: a JSONL
// file sink for -trace, an in-memory collector for -timing, or both.
// The returned closer flushes and closes whatever was opened.
func setupTracing(traceFile string, timing bool) (*obs.Tracer, *obs.Collector, func() error, error) {
	var sinks []obs.Sink
	var f *os.File
	if traceFile != "" {
		var err error
		f, err = os.Create(traceFile)
		if err != nil {
			return nil, nil, nil, err
		}
		sinks = append(sinks, obs.NewJSONL(f))
	}
	var col *obs.Collector
	if timing {
		col = obs.NewCollector()
		sinks = append(sinks, col)
	}
	tracer := obs.New(obs.Multi(sinks...))
	closer := func() error {
		err := tracer.Close()
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	return tracer, col, closer, nil
}

// startPprof serves net/http/pprof on addr when non-empty.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
