// Command experiments regenerates the evaluation tables and figures (see
// DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-exp all|t1|t2|t3|f1|f2|f3|f4|a1|a2|a3] [-data DIR] [-quick]
//
// Tables render to stdout; with -data, the figure series are also written
// as CSV files into DIR.
package main

import (
	"flag"
	"fmt"
	"os"

	"smartndr/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	data := flag.String("data", "", "directory for CSV series (optional)")
	quick := flag.Bool("quick", false, "reduced workload sizes")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}
	if *data != "" {
		if err := os.MkdirAll(*data, 0o755); err != nil {
			fatal(err)
		}
	}
	opt := experiments.Options{Out: os.Stdout, DataDir: *data, Quick: *quick}
	if *exp == "all" {
		if err := experiments.All(opt); err != nil {
			fatal(err)
		}
		return
	}
	r, err := experiments.ByID(*exp)
	if err != nil {
		fatal(err)
	}
	if err := r.Run(opt); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
