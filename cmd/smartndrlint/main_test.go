package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListPrintsAllAnalyzers(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errw.String())
	}
	for _, name := range []string{
		"maporder", "seededrand", "wallclock", "spanhygiene", "floatorder",
		"metricname", "httpbody", "errcmp", "gateleak", "ctxflow",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-run", "nosuch", "-list"}, &out, &errw); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "nosuch") {
		t.Errorf("stderr does not name the bad analyzer: %s", errw.String())
	}
}

func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loading the full module closure is not short")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("smartndrlint exited %d on the repo\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
}

// TestJSONTimeBudget drives the machine-readable and timing paths on
// one small package: -json must emit a valid (empty, sorted) array,
// -time must report every analyzer plus load and total, and an
// impossible -budget must flip the exit code even with zero findings.
func TestJSONTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("loading a package closure is not short")
	}
	var out, errw bytes.Buffer
	code := run([]string{"-C", "../..", "-json", "-time", "-budget", "1ns", "./internal/geom"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exceeded budget exited %d, want 1\nstderr:\n%s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "over the 1ns budget") {
		t.Errorf("stderr does not report the blown budget:\n%s", errw.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("expected a clean package, got %d JSON findings", len(diags))
	}
	for _, want := range []string{"maporder", "ctxflow", "(load)", "(total)"} {
		if !strings.Contains(errw.String(), want) {
			t.Errorf("-time output missing %q:\n%s", want, errw.String())
		}
	}
}

// TestJSONFindings checks the JSON shape on a package with known
// findings: the spanhygiene golden package under testdata.
func TestJSONFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("loading a package closure is not short")
	}
	var out, errw bytes.Buffer
	code := run([]string{"-C", "../../internal/analysis/testdata/src/errcmp/a", "-json", "-run", "errcmp", "."}, &out, &errw)
	if code != 1 {
		t.Fatalf("package with findings exited %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected errcmp findings in the golden package, got none")
	}
	for i, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer != "errcmp" || d.Message == "" {
			t.Errorf("finding %d is incomplete: %+v", i, d)
		}
		if i > 0 && (diags[i-1].File > d.File || (diags[i-1].File == d.File && diags[i-1].Line > d.Line)) {
			t.Errorf("findings not sorted at %d: %+v then %+v", i, diags[i-1], d)
		}
	}
}
