package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListPrintsAllAnalyzers(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errw.String())
	}
	for _, name := range []string{"maporder", "seededrand", "wallclock", "spanhygiene", "floatorder"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-run", "nosuch", "-list"}, &out, &errw); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "nosuch") {
		t.Errorf("stderr does not name the bad analyzer: %s", errw.String())
	}
}

func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loading the full module closure is not short")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("smartndrlint exited %d on the repo\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
}
