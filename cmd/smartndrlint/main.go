// Command smartndrlint runs the repo's static-analysis suite
// (internal/analysis) over the given packages: seven analyzers that
// enforce the determinism, tracing, telemetry, and units contracts —
// maporder, seededrand, wallclock, spanhygiene, floatorder,
// metricname. It exits nonzero
// when any finding survives the //lint: annotations, so `make lint`
// and CI gate on a clean tree. See docs/static-analysis.md.
//
// Usage:
//
//	smartndrlint [-run analyzer,analyzer] [-list] [packages]
//
// Packages default to ./... relative to the current directory, which
// must be inside the module.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"smartndr/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("smartndrlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "print the analyzers and exit")
	subset := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("C", ".", "directory to resolve package patterns from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := analysis.ByName(*subset)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &analysis.Loader{Dir: *dir}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Fprintf(out, "%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errw, "smartndrlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
