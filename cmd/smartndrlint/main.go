// Command smartndrlint runs the repo's static-analysis suite
// (internal/analysis) over the given packages: ten analyzers that
// enforce the determinism, tracing, telemetry, units, and
// resource-hygiene contracts — maporder, seededrand, wallclock,
// spanhygiene, floatorder, metricname, httpbody, errcmp, gateleak,
// ctxflow. It exits nonzero when any finding survives the //lint:
// annotations, so `make lint` and CI gate on a clean tree. See
// docs/static-analysis.md.
//
// Usage:
//
//	smartndrlint [-run analyzer,analyzer] [-list] [-json] [-time] [-budget 30s] [packages]
//
// Packages default to ./... relative to the current directory, which
// must be inside the module. -json emits machine-readable diagnostics
// (file/line/col/analyzer/message, deterministically sorted) for CI
// and editors; exit codes are the same as text mode. -time prints
// per-analyzer wall time to stderr, and -budget fails the run when the
// total (package load + all analyzers) exceeds the given duration —
// the guard CI uses to catch the `go list -e -deps -json` load path
// getting slow as the tree grows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"smartndr/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("smartndrlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "print the analyzers and exit")
	subset := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("C", ".", "directory to resolve package patterns from")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	timings := fs.Bool("time", false, "print per-analyzer wall time to stderr")
	budget := fs.Duration("budget", 0, "fail if the whole run (load + analyzers) exceeds this duration (0 = no budget)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := analysis.ByName(*subset)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	loader := &analysis.Loader{Dir: *dir}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	loadTime := time.Since(start)

	// Analyzers run one at a time so each can be timed; the per-function
	// CFGs are built once and shared through the package cache, so the
	// split costs nothing. Diagnostics merge back into the canonical
	// position-sorted order.
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		aStart := time.Now()
		ds, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
		if err != nil {
			fmt.Fprintln(errw, err)
			return 2
		}
		if *timings {
			fmt.Fprintf(errw, "smartndrlint: %-12s %8.1fms\n", a.Name, float64(time.Since(aStart).Microseconds())/1000)
		}
		diags = append(diags, ds...)
	}
	analysis.SortDiagnostics(diags)
	total := time.Since(start)
	if *timings {
		fmt.Fprintf(errw, "smartndrlint: %-12s %8.1fms\n", "(load)", float64(loadTime.Microseconds())/1000)
		fmt.Fprintf(errw, "smartndrlint: %-12s %8.1fms\n", "(total)", float64(total.Microseconds())/1000)
	}

	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(r) {
				return r
			}
		}
		return name
	}
	if *asJSON {
		jds := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			jds = append(jds, jsonDiag{
				File:     rel(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jds); err != nil {
			fmt.Fprintln(errw, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(out, "%s:%d:%d: %s (%s)\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	code := 0
	if len(diags) > 0 {
		fmt.Fprintf(errw, "smartndrlint: %d finding(s)\n", len(diags))
		code = 1
	}
	if *budget > 0 && total > *budget {
		fmt.Fprintf(errw, "smartndrlint: run took %s, over the %s budget\n", total.Round(time.Millisecond), *budget)
		code = 1
	}
	return code
}
