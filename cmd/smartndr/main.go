// Command smartndr runs the full flow on one benchmark: synthesize the
// clock tree, apply a rule-assignment scheme, and report the metrics.
//
// Usage:
//
//	smartndr -bench cns03 -scheme smart
//	smartndr -in my.json -scheme all -tech tech65
//	smartndr -bench cns01 -scheme smart -save tree.json
//	smartndr -bench cns05 -scheme smart -timing -trace run.jsonl
//
// With -scheme all, every scheme runs on the same synthesized tree and a
// comparison table is printed. -timing prints a phase-breakdown table to
// stderr, -trace streams every span as a JSONL event, and -pprof serves
// net/http/pprof for live profiling (see docs/observability.md).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"smartndr"
	"smartndr/internal/obs"
	"smartndr/internal/report"
	"smartndr/internal/sio"
	"smartndr/internal/tech"
	"smartndr/internal/viz"
	"smartndr/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "built-in benchmark name (cns01…cns08)")
	in := flag.String("in", "", "benchmark JSON produced by ctsgen")
	schemeName := flag.String("scheme", "all", "all|all-default|blanket|trunk|smart")
	techName := flag.String("tech", "tech45", "technology: tech45|tech65")
	save := flag.String("save", "", "save the (last) scheme's tree as JSON")
	svg := flag.String("svg", "", "render the (last) scheme's tree as SVG")
	mc := flag.Bool("mc", false, "also run process-variation Monte Carlo")
	workers := flag.Int("workers", 0, "parallel workers for Monte Carlo trials (0 = all cores; results are identical at any count)")
	traceFile := flag.String("trace", "", "write span events as JSON lines to this file")
	timing := flag.Bool("timing", false, "print a phase-timing breakdown to stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	startPprof(*pprofAddr)
	tracer, collector, closeTrace, err := setupTracing(*traceFile, *timing)
	if err != nil {
		fatal(err)
	}

	bm, err := loadBench(*bench, *in)
	if err != nil {
		fatal(err)
	}
	te, err := tech.ByName(*techName)
	if err != nil {
		fatal(err)
	}
	flow := smartndr.NewFlow(&smartndr.FlowConfig{
		Tech: te, Library: smartndr.DefaultLibraryFor(te), Tracer: tracer, Workers: *workers,
	})
	root := tracer.Start("smartndr", obs.S("bench", bm.Spec.Name))
	// Registered first so it runs after the deferred stats/MC prints:
	// close the root span, flush the trace, and render the phase table.
	defer func() {
		root.End()
		if err := closeTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "smartndr: trace:", err)
		}
		if collector != nil {
			tb := report.TimingTable("phase timing ("+bm.Spec.Name+")", collector.Events())
			fmt.Fprintln(os.Stderr)
			if err := tb.Render(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "smartndr: timing:", err)
			}
		}
	}()

	fmt.Printf("benchmark %s: %d sinks, %.1f×%.1f mm die (%s)\n",
		bm.Spec.Name, len(bm.Sinks), bm.Spec.DieX/1000, bm.Spec.DieY/1000, bm.Spec.Dist)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synthesized: %d nodes, %d buffers, %d leaf clusters\n\n",
		len(built.Tree.Nodes), built.Buffers, built.NumClusters)

	schemes, err := pickSchemes(*schemeName)
	if err != nil {
		fatal(err)
	}
	tb := report.NewTable("results ("+te.Name+")",
		"scheme", "power (mW)", "cap (pF)", "WL (mm)", "worst slew (ps)", "viol", "skew (ps)", "NDR len")
	var last *smartndr.Result
	for _, s := range schemes {
		r, err := flow.Apply(built, s)
		if err != nil {
			fatal(err)
		}
		m := r.Metrics
		tb.AddRow(s.String(), report.MW(m.Power.Total()), report.PF(m.SwitchedCap),
			fmt.Sprintf("%.2f", m.Wirelength/1000), report.Ps(m.WorstSlew),
			fmt.Sprintf("%d", m.SlewViol), report.Ps(m.Skew), report.Pct(m.NDRFraction))
		last = r
		if r.Stats != nil {
			defer func(st *smartndr.OptStats) {
				fmt.Printf("\nsmart-ndr: %d downgrades, %d upgrades, %.0f µm repair wire, %d passes\n",
					st.Downgrades, st.Upgrades, st.RepairWire, st.Passes)
			}(r.Stats)
		}
		if *mc {
			stats, err := flow.MonteCarlo(r.Tree, smartndr.VariationParams{
				WidthSigma: 0.004, BufSigma: 0.03, SpatialFrac: 0.6, Samples: 300, Seed: 7,
			})
			if err != nil {
				fatal(err)
			}
			defer func(name string, st *smartndr.VariationStats) {
				fmt.Printf("%s under variation: skew mean %s ps, σ %s ps, P95 %s ps\n",
					name, report.Ps(st.MeanSkew), report.Ps(st.StdSkew), report.Ps(st.P95Skew))
			}(s.String(), stats)
		}
	}
	if err := tb.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if *save != "" && last != nil {
		if err := sio.SaveTree(*save, last.Tree); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %s tree to %s\n", last.Scheme, *save)
	}
	if *svg != "" && last != nil {
		title := fmt.Sprintf("%s / %s (%s)", bm.Spec.Name, last.Scheme, te.Name)
		if err := viz.WriteSVGFile(*svg, last.Tree, te, flow.Config().Library, viz.NewOptions(title)); err != nil {
			fatal(err)
		}
		fmt.Printf("rendered %s tree to %s\n", last.Scheme, *svg)
	}
}

// setupTracing builds the tracer for the requested outputs: a JSONL
// file sink for -trace, an in-memory collector for -timing, or both.
// The returned closer flushes and closes whatever was opened.
func setupTracing(traceFile string, timing bool) (*smartndr.Tracer, *obs.Collector, func() error, error) {
	var sinks []obs.Sink
	var f *os.File
	if traceFile != "" {
		var err error
		f, err = os.Create(traceFile)
		if err != nil {
			return nil, nil, nil, err
		}
		sinks = append(sinks, obs.NewJSONL(f))
	}
	var col *obs.Collector
	if timing {
		col = obs.NewCollector()
		sinks = append(sinks, col)
	}
	tracer := obs.New(obs.Multi(sinks...))
	closer := func() error {
		err := tracer.Close()
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	return tracer, col, closer, nil
}

// startPprof serves net/http/pprof on addr when non-empty.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "smartndr: pprof:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
}

func loadBench(bench, in string) (*workload.Benchmark, error) {
	switch {
	case bench != "" && in != "":
		return nil, fmt.Errorf("use either -bench or -in, not both")
	case bench != "":
		return smartndr.Benchmark(bench)
	case in != "":
		if strings.HasSuffix(in, ".def") {
			return sio.ReadDEFLiteFile(in)
		}
		return sio.LoadBenchmark(in)
	default:
		return smartndr.Benchmark("cns01")
	}
}

func pickSchemes(name string) ([]smartndr.Scheme, error) {
	switch name {
	case "all":
		return []smartndr.Scheme{
			smartndr.SchemeAllDefault, smartndr.SchemeBlanket,
			smartndr.SchemeTrunk, smartndr.SchemeSmart,
		}, nil
	case "all-default":
		return []smartndr.Scheme{smartndr.SchemeAllDefault}, nil
	case "blanket":
		return []smartndr.Scheme{smartndr.SchemeBlanket}, nil
	case "trunk":
		return []smartndr.Scheme{smartndr.SchemeTrunk}, nil
	case "smart":
		return []smartndr.Scheme{smartndr.SchemeSmart}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartndr:", err)
	os.Exit(1)
}
