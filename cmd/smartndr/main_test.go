package main

import "testing"

func TestPickSchemes(t *testing.T) {
	all, err := pickSchemes("all")
	if err != nil || len(all) != 4 {
		t.Fatalf("all: %v %v", all, err)
	}
	for _, name := range []string{"all-default", "blanket", "trunk", "smart"} {
		s, err := pickSchemes(name)
		if err != nil || len(s) != 1 {
			t.Errorf("%s: %v %v", name, s, err)
		}
	}
	if _, err := pickSchemes("bogus"); err == nil {
		t.Error("unknown scheme must fail")
	}
}

func TestLoadBenchConflicts(t *testing.T) {
	if _, err := loadBench("cns01", "x.json"); err == nil {
		t.Error("both -bench and -in must fail")
	}
	bm, err := loadBench("", "")
	if err != nil || bm.Spec.Name != "cns01" {
		t.Errorf("default benchmark: %v %v", bm.Spec.Name, err)
	}
	if _, err := loadBench("", "/nonexistent.json"); err == nil {
		t.Error("missing file must fail")
	}
}
