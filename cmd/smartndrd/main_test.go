package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a shutdown function that triggers drain and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (base string, shutdown func() error) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(args, io.Discard, ready, stop) }()
	addr := <-ready
	return "http://" + addr, func() error {
		close(stop)
		return <-done
	}
}

func TestDaemonServesAndDrains(t *testing.T) {
	base, shutdown := startDaemon(t)

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	// One real (tiny) flow through the full daemon stack.
	body := `{"spec":{"name":"d","sinks":12,"die_x":300,"die_y":300,"seed":3,"cap_min":1e-15,"cap_max":3e-15}}`
	resp, err = http.Post(base+"/v1/flow", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flow = %d: %s", resp.StatusCode, out)
	}
	var flowOut map[string]any
	if err := json.Unmarshal(out, &flowOut); err != nil {
		t.Fatalf("flow response not JSON: %v", err)
	}
	if flowOut["key"] == "" || flowOut["bench"] != "d" {
		t.Errorf("flow response %v", flowOut)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The listener is gone after drain.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Error("daemon still serving after shutdown")
	}
}

func TestDaemonWritesTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "spans.jsonl")
	base, shutdown := startDaemon(t, "-trace", trace)

	body := `{"spec":{"name":"tr","sinks":8,"die_x":200,"die_y":200,"seed":1,"cap_min":1e-15,"cap_max":3e-15}}`
	resp, err := http.Post(base+"/v1/flow", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"serve.flow"`) {
		t.Errorf("trace file lacks the request span:\n%s", data)
	}
}

func TestDaemonTelemetryEndpoints(t *testing.T) {
	base, shutdown := startDaemon(t)
	defer shutdown()

	body := `{"spec":{"name":"tz","sinks":8,"die_x":200,"die_y":200,"seed":2,"cap_min":1e-15,"cap_max":3e-15}}`
	resp, err := http.Post(base+"/v1/flow", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flow = %d", resp.StatusCode)
	}

	// /metricsz: full Prometheus exposition, request + span histograms.
	resp, err = http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"smartndr_serve_requests_total 1",
		"smartndr_serve_flow_cold_seconds_count 1",
		`smartndr_span_duration_seconds_count{path="serve.flow"} 1`,
		"smartndr_go_goroutines",
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("daemon exposition missing %q", want)
		}
	}

	// /v1/tracez: the request's span tree is retained by default.
	resp, err = http.Get(base + "/v1/tracez")
	if err != nil {
		t.Fatal(err)
	}
	tz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tracez = %d: %s", resp.StatusCode, tz)
	}
	var page struct {
		Capacity int `json:"capacity"`
		Total    int `json:"total"`
		Slowest  []struct {
			Endpoint string `json:"endpoint"`
			Spans    []struct {
				Span string `json:"span"`
			} `json:"spans"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(tz, &page); err != nil {
		t.Fatalf("tracez not JSON: %v: %s", err, tz)
	}
	if page.Capacity != 64 || page.Total != 1 || len(page.Slowest) != 1 {
		t.Errorf("tracez page = %+v", page)
	}
	if len(page.Slowest) == 1 &&
		(len(page.Slowest[0].Spans) == 0 || page.Slowest[0].Spans[0].Span != "serve.flow") {
		t.Errorf("tracez slowest spans = %+v, want serve.flow root", page.Slowest[0].Spans)
	}
}

func TestDaemonTelemetryDisabled(t *testing.T) {
	base, shutdown := startDaemon(t, "-metrics=false", "-tracez-capacity", "0")
	defer shutdown()

	// Tracez is gone; metricsz still serves the (span-free) registry.
	resp, err := http.Get(base + "/v1/tracez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled tracez = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz = %d", resp.StatusCode)
	}
	if strings.Contains(string(expo), "smartndr_span_duration_seconds") {
		t.Error("span histograms present with -metrics=false")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

func TestParseBackends(t *testing.T) {
	cases := []struct {
		name, role, list string
		wantErr          bool
		wantSpecs        int
	}{
		{"standalone default", "standalone", "", false, 0},
		{"worker default", "worker", "", false, 0},
		{"standalone rejects backends", "standalone", "http://a", true, 0},
		{"worker rejects backends", "worker", "http://a", true, 0},
		{"frontend requires backends", "frontend", "", true, 0},
		{"frontend empty entries", "frontend", ", ,", true, 0},
		{"frontend urls", "frontend", "http://a:1,http://b:2", false, 2},
		{"frontend named", "frontend", "w1=http://a:1, w2=http://b:2 ,self=loopback", false, 3},
		{"frontend https", "frontend", "w1=https://a:1,self=loopback", false, 2},
		{"bare token is not loopback", "frontend", "self,w1=http://a:1", true, 0},
		{"scheme-less url", "frontend", "w1=a:1", true, 0},
		{"unknown role", "proxy", "", true, 0},
	}
	for _, c := range cases {
		specs, err := parseBackends(c.role, c.list)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(specs) != c.wantSpecs {
			t.Errorf("%s: %d specs, want %d", c.name, len(specs), c.wantSpecs)
		}
	}

	specs, err := parseBackends("frontend", "w1=http://a:1,self=loopback")
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Name != "w1" || specs[0].URL != "http://a:1" {
		t.Errorf("named spec = %+v", specs[0])
	}
	if specs[1].Name != "self" || specs[1].URL != "" {
		t.Errorf("loopback spec = %+v, want empty URL", specs[1])
	}
}

// TestDaemonClusterRoles runs the full fleet through real processes'
// worth of daemons in-process: two workers and a frontend sharding
// across them plus its own loopback shard, checked byte-for-byte
// against a standalone daemon.
func TestDaemonClusterRoles(t *testing.T) {
	w1, stopW1 := startDaemon(t, "-role", "worker")
	defer stopW1()
	w2, stopW2 := startDaemon(t, "-role", "worker")
	defer stopW2()
	fe, stopFE := startDaemon(t,
		"-role", "frontend",
		"-backends", "w1="+w1+",w2="+w2+",self=loopback",
		"-probe-interval", "100ms")
	defer stopFE()
	sa, stopSA := startDaemon(t)
	defer stopSA()

	post := func(base, path, body string) (int, []byte) {
		resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	flow := `{"spec":{"name":"clr","sinks":10,"die_x":250,"die_y":250,"seed":4,"cap_min":1e-15,"cap_max":3e-15}}`
	feStatus, feBody := post(fe, "/v1/flow", flow)
	if feStatus != http.StatusOK {
		t.Fatalf("frontend flow = %d: %s", feStatus, feBody)
	}
	saStatus, saBody := post(sa, "/v1/flow", flow)
	if saStatus != http.StatusOK {
		t.Fatalf("standalone flow = %d: %s", saStatus, saBody)
	}
	if !bytes.Equal(feBody, saBody) {
		t.Errorf("frontend flow differs from standalone:\n%s\n%s", feBody, saBody)
	}

	batch := `{"requests":[` + flow + `,` + flow + `]}`
	feStatus, feBody = post(fe, "/v1/batch", batch)
	if feStatus != http.StatusOK {
		t.Fatalf("frontend batch = %d: %s", feStatus, feBody)
	}
	saStatus, saBody = post(sa, "/v1/batch", batch)
	if saStatus != http.StatusOK || !bytes.Equal(feBody, saBody) {
		t.Errorf("frontend batch differs from standalone (%d):\n%s\n%s", saStatus, feBody, saBody)
	}

	// The frontend's statsz exposes the three shards.
	resp, err := http.Get(fe + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	stBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		Shards []struct {
			Shard    string `json:"shard"`
			Requests uint64 `json:"requests"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(stBody, &st); err != nil {
		t.Fatalf("frontend statsz not JSON: %v", err)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("frontend statsz has %d shards, want 3: %s", len(st.Shards), stBody)
	}
	total := uint64(0)
	for _, sh := range st.Shards {
		total += sh.Requests
	}
	if total == 0 {
		t.Error("no shard recorded any request")
	}

	// A worker daemon refuses -backends; a frontend without them fails.
	if err := run([]string{"-role", "worker", "-backends", "http://x"}, io.Discard, nil, nil); err == nil {
		t.Error("worker accepted -backends")
	}
	if err := run([]string{"-role", "frontend"}, io.Discard, nil, nil); err == nil {
		t.Error("frontend accepted an empty backend list")
	}
}

// TestDaemonSessionRoundTrip drives the session lifecycle through the
// full daemon stack: create, delta, read, delete, and the statsz gauge.
func TestDaemonSessionRoundTrip(t *testing.T) {
	base, shutdown := startDaemon(t, "-session-ttl", "1m", "-max-sessions", "4")
	defer shutdown()

	post := func(path, body string) (int, []byte) {
		resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	create := `{"spec":{"name":"sess","sinks":14,"die_x":300,"die_y":300,"seed":9,"cap_min":1e-15,"cap_max":3e-15}}`
	status, body := post("/v1/session", create)
	if status != http.StatusOK {
		t.Fatalf("session create = %d: %s", status, body)
	}
	var created struct {
		Session string          `json:"session"`
		Rev     int             `json:"rev"`
		Key     string          `json:"key"`
		Nodes   int             `json:"nodes"`
		Result  json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("create response not JSON: %v: %s", err, body)
	}
	if created.Session == "" || created.Key == "" || len(created.Result) == 0 || created.Nodes == 0 {
		t.Fatalf("create response incomplete: %s", body)
	}

	// The pristine session result is byte-identical to a cold flow run.
	status, coldBody := post("/v1/flow", create)
	if status != http.StatusOK {
		t.Fatalf("cold flow = %d: %s", status, coldBody)
	}
	if !bytes.Equal(created.Result, coldBody) {
		t.Errorf("session create result differs from cold flow:\n%s\n%s", created.Result, coldBody)
	}

	// One warm delta moves a sink; the key must change with the state.
	delta := `{"edits":[{"op":"move_sink","sink":0,"x":40,"y":55}]}`
	status, body = post("/v1/session/"+created.Session+"/delta", delta)
	if status != http.StatusOK {
		t.Fatalf("session delta = %d: %s", status, body)
	}
	var edited struct {
		Rev  int    `json:"rev"`
		Revs int    `json:"revs"`
		Key  string `json:"key"`
	}
	if err := json.Unmarshal(body, &edited); err != nil {
		t.Fatalf("delta response not JSON: %v: %s", err, body)
	}
	if edited.Rev != 1 || edited.Revs != 2 || edited.Key == created.Key {
		t.Errorf("delta response = %s, want rev 1 of 2 with a new key", body)
	}

	// Rolling back to rev 0 restores the pristine key.
	status, body = post("/v1/session/"+created.Session+"/delta", `{"rollback_to":0}`)
	if status != http.StatusOK {
		t.Fatalf("rollback = %d: %s", status, body)
	}
	var rolled struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &rolled); err != nil {
		t.Fatal(err)
	}
	if rolled.Key != created.Key {
		t.Errorf("rollback key = %s, want pristine %s", rolled.Key, created.Key)
	}

	// GET returns the envelope; statsz counts the live session.
	resp, err := http.Get(base + "/v1/session/" + created.Session)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session read = %d: %s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		Sessions struct {
			Live int `json:"live"`
		} `json:"sessions"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz not JSON: %v", err)
	}
	if st.Sessions.Live != 1 {
		t.Errorf("statsz sessions.live = %d, want 1: %s", st.Sessions.Live, body)
	}

	// DELETE closes it; a second delta 404s.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/session/"+created.Session, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("session delete = %d, want 200", resp.StatusCode)
	}
	if status, body = post("/v1/session/"+created.Session+"/delta", delta); status != http.StatusNotFound {
		t.Errorf("delta after delete = %d: %s", status, body)
	}
}
