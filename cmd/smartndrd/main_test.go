package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a shutdown function that triggers drain and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (base string, shutdown func() error) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(args, io.Discard, ready, stop) }()
	addr := <-ready
	return "http://" + addr, func() error {
		close(stop)
		return <-done
	}
}

func TestDaemonServesAndDrains(t *testing.T) {
	base, shutdown := startDaemon(t)

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	// One real (tiny) flow through the full daemon stack.
	body := `{"spec":{"name":"d","sinks":12,"die_x":300,"die_y":300,"seed":3,"cap_min":1e-15,"cap_max":3e-15}}`
	resp, err = http.Post(base+"/v1/flow", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flow = %d: %s", resp.StatusCode, out)
	}
	var flowOut map[string]any
	if err := json.Unmarshal(out, &flowOut); err != nil {
		t.Fatalf("flow response not JSON: %v", err)
	}
	if flowOut["key"] == "" || flowOut["bench"] != "d" {
		t.Errorf("flow response %v", flowOut)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The listener is gone after drain.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Error("daemon still serving after shutdown")
	}
}

func TestDaemonWritesTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "spans.jsonl")
	base, shutdown := startDaemon(t, "-trace", trace)

	body := `{"spec":{"name":"tr","sinks":8,"die_x":200,"die_y":200,"seed":1,"cap_min":1e-15,"cap_max":3e-15}}`
	resp, err := http.Post(base+"/v1/flow", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"serve.flow"`) {
		t.Errorf("trace file lacks the request span:\n%s", data)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
