package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a shutdown function that triggers drain and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (base string, shutdown func() error) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(args, io.Discard, ready, stop) }()
	addr := <-ready
	return "http://" + addr, func() error {
		close(stop)
		return <-done
	}
}

func TestDaemonServesAndDrains(t *testing.T) {
	base, shutdown := startDaemon(t)

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	// One real (tiny) flow through the full daemon stack.
	body := `{"spec":{"name":"d","sinks":12,"die_x":300,"die_y":300,"seed":3,"cap_min":1e-15,"cap_max":3e-15}}`
	resp, err = http.Post(base+"/v1/flow", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flow = %d: %s", resp.StatusCode, out)
	}
	var flowOut map[string]any
	if err := json.Unmarshal(out, &flowOut); err != nil {
		t.Fatalf("flow response not JSON: %v", err)
	}
	if flowOut["key"] == "" || flowOut["bench"] != "d" {
		t.Errorf("flow response %v", flowOut)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The listener is gone after drain.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Error("daemon still serving after shutdown")
	}
}

func TestDaemonWritesTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "spans.jsonl")
	base, shutdown := startDaemon(t, "-trace", trace)

	body := `{"spec":{"name":"tr","sinks":8,"die_x":200,"die_y":200,"seed":1,"cap_min":1e-15,"cap_max":3e-15}}`
	resp, err := http.Post(base+"/v1/flow", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"serve.flow"`) {
		t.Errorf("trace file lacks the request span:\n%s", data)
	}
}

func TestDaemonTelemetryEndpoints(t *testing.T) {
	base, shutdown := startDaemon(t)
	defer shutdown()

	body := `{"spec":{"name":"tz","sinks":8,"die_x":200,"die_y":200,"seed":2,"cap_min":1e-15,"cap_max":3e-15}}`
	resp, err := http.Post(base+"/v1/flow", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flow = %d", resp.StatusCode)
	}

	// /metricsz: full Prometheus exposition, request + span histograms.
	resp, err = http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"smartndr_serve_requests_total 1",
		"smartndr_serve_flow_cold_seconds_count 1",
		`smartndr_span_duration_seconds_count{path="serve.flow"} 1`,
		"smartndr_go_goroutines",
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("daemon exposition missing %q", want)
		}
	}

	// /v1/tracez: the request's span tree is retained by default.
	resp, err = http.Get(base + "/v1/tracez")
	if err != nil {
		t.Fatal(err)
	}
	tz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tracez = %d: %s", resp.StatusCode, tz)
	}
	var page struct {
		Capacity int `json:"capacity"`
		Total    int `json:"total"`
		Slowest  []struct {
			Endpoint string `json:"endpoint"`
			Spans    []struct {
				Span string `json:"span"`
			} `json:"spans"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(tz, &page); err != nil {
		t.Fatalf("tracez not JSON: %v: %s", err, tz)
	}
	if page.Capacity != 64 || page.Total != 1 || len(page.Slowest) != 1 {
		t.Errorf("tracez page = %+v", page)
	}
	if len(page.Slowest) == 1 &&
		(len(page.Slowest[0].Spans) == 0 || page.Slowest[0].Spans[0].Span != "serve.flow") {
		t.Errorf("tracez slowest spans = %+v, want serve.flow root", page.Slowest[0].Spans)
	}
}

func TestDaemonTelemetryDisabled(t *testing.T) {
	base, shutdown := startDaemon(t, "-metrics=false", "-tracez-capacity", "0")
	defer shutdown()

	// Tracez is gone; metricsz still serves the (span-free) registry.
	resp, err := http.Get(base + "/v1/tracez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled tracez = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz = %d", resp.StatusCode)
	}
	if strings.Contains(string(expo), "smartndr_span_duration_seconds") {
		t.Error("span histograms present with -metrics=false")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
