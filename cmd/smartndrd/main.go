// Command smartndrd serves the smartndr flow over HTTP/JSON: a
// long-running daemon that synthesizes and evaluates clock trees on
// demand, with content-addressed result caching, bounded admission, and
// graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	smartndrd -addr :8147
//	smartndrd -addr localhost:8147 -max-concurrent 4 -queue-depth 8
//	smartndrd -trace spans.jsonl -request-timeout 30s
//
// One binary serves every role in a fleet (-role):
//
//	standalone  (default) single node, in-process loopback backend
//	worker      identical to standalone; addressed by a frontend
//	frontend    routes across -backends: consistent-hash cache shards,
//	            per-backend admission gates, hedged retries on
//	            stragglers, periodic health probes
//
//	smartndrd -role worker -addr :8148
//	smartndrd -role worker -addr :8149
//	smartndrd -role frontend -addr :8147 \
//	    -backends http://localhost:8148,http://localhost:8149
//
// Endpoints (see docs/service.md and docs/observability.md):
//
//	POST /v1/flow     run one benchmark through one scheme
//	POST /v1/sweep    scheme×corner arm batch on one shared tree
//	POST /v1/batch    many flow requests in one round trip
//	POST /v1/session  open a stateful design session (edit + re-evaluate)
//	POST /v1/session/{id}/delta  apply edits or roll back, warm
//	GET  /v1/session/{id}        session state; DELETE closes it
//	GET  /v1/healthz  liveness (503 while draining)
//	GET  /v1/statsz   counters, latency percentiles, cache, admission, shards
//	GET  /v1/tracez   slowest + most recent request span trees
//	GET  /metricsz    Prometheus text exposition (counters, gauges, histograms)
//
// Telemetry is on by default: -metrics wires a span observer into the
// tracer chain so every request and engine phase lands in a latency
// histogram, and -tracez-capacity bounds the /v1/tracez buffer
// (0 disables the endpoint). -pprof serves net/http/pprof on a
// separate address. On SIGTERM or SIGINT the daemon stops admitting
// work (new requests get 503 + Retry-After), lets in-flight requests
// finish up to -drain-timeout, then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smartndr/internal/cluster"
	"smartndr/internal/obs"
	"smartndr/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "smartndrd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body. ready, when non-nil, receives the
// bound listen address once the server is accepting connections; stop,
// when non-nil, triggers shutdown like a signal would (tests use it
// instead of delivering real signals).
func run(args []string, stderr io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("smartndrd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8147", "listen address")
	maxConc := fs.Int("max-concurrent", 0, "max requests executing at once (0 = all cores)")
	queueDepth := fs.Int("queue-depth", 0, "max requests waiting for a slot before 429 (0 = 2×max-concurrent)")
	reqTimeout := fs.Duration("request-timeout", 120*time.Second, "per-request deadline ceiling")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503 refusals")
	cacheEntries := fs.Int("cache-entries", 256, "result-cache capacity (entries)")
	workers := fs.Int("workers", 0, "sweep-arm fan-out bound (0 = all cores; results identical at any count)")
	maxSpecBytes := fs.Int64("max-spec-bytes", 0, "request-body size cap; oversize requests get 413 (0 = 1 MiB default)")
	traceFile := fs.String("trace", "", "write span events as JSON lines to this file")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	metrics := fs.Bool("metrics", true, "aggregate span latencies into /metricsz histograms")
	tracezCap := fs.Int("tracez-capacity", 64, "request span trees retained for /v1/tracez (0 disables)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	role := fs.String("role", "standalone", "standalone | worker | frontend")
	backends := fs.String("backends", "", "frontend backend list, comma-separated [name=]url ('loopback' = in-process)")
	backendConc := fs.Int("backend-concurrent", 0, "frontend: max in-flight calls per backend (0 = default 4)")
	hedgeAfter := fs.Duration("hedge-after", 0, "frontend: fixed hedge delay (0 = adaptive recent p95)")
	noHedge := fs.Bool("no-hedge", false, "frontend: disable hedged retries")
	probeEvery := fs.Duration("probe-interval", 5*time.Second, "frontend: backend health-probe period (0 disables)")
	sessionTTL := fs.Duration("session-ttl", 15*time.Minute, "idle lifetime of a design session (refreshed on use)")
	maxSessions := fs.Int("max-sessions", 64, "live design sessions before LRU eviction")
	sessionMaxBytes := fs.Int64("session-max-bytes", 256<<20, "soft memory budget for live sessions (bytes)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	startPprof(*pprofAddr, stderr)

	// The sink chain: an optional JSONL file sink, wrapped (when -metrics
	// is on) by a SpanObserver that folds every completed span into a
	// per-path latency histogram on the way through. The observer must be
	// the tracer's direct sink so it sees all spans, including ones from
	// request-scoped tracers.
	var (
		tracer  *obs.Tracer
		spanObs *obs.SpanObserver
		sink    obs.Sink
		f       *os.File
	)
	if *traceFile != "" {
		var err error
		if f, err = os.Create(*traceFile); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		sink = obs.NewJSONL(f)
	}
	if *metrics {
		spanObs = obs.NewSpanObserver(sink)
		sink = spanObs
	}
	if sink != nil {
		tracer = obs.New(sink)
	}
	closeTrace := func() error {
		var err error
		if tracer != nil {
			err = tracer.Close()
		}
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}

	// Every role routes through the cluster runner; standalone and
	// worker get a single in-process loopback backend (no HTTP hop, no
	// behavior change), frontend gets the configured shard set.
	specs, err := parseBackends(*role, *backends)
	if err != nil {
		closeTrace()
		return err
	}
	runner, err := cluster.NewRunner(cluster.Config{
		Local:             &serve.FlowRunner{Workers: *workers},
		Backends:          specs,
		BackendConcurrent: *backendConc,
		HedgeAfter:        *hedgeAfter,
		DisableHedge:      *noHedge,
		Tracer:            tracer,
	})
	if err != nil {
		closeTrace()
		return err
	}

	srv := serve.New(serve.Config{
		Runner:          runner,
		MaxConcurrent:   *maxConc,
		QueueDepth:      *queueDepth,
		RequestTimeout:  *reqTimeout,
		RetryAfter:      *retryAfter,
		CacheEntries:    *cacheEntries,
		Workers:         *workers,
		MaxBodyBytes:    *maxSpecBytes,
		Tracer:          tracer,
		SpanObs:         spanObs,
		TracezCapacity:  *tracezCap,
		SessionTTL:      *sessionTTL,
		MaxSessions:     *maxSessions,
		SessionMaxBytes: *sessionMaxBytes,
	})

	// Frontends keep membership fresh: a probe loop marks dead backends
	// down (routing and hedging skip them) and recovers them when they
	// answer again.
	probeDone := make(chan struct{})
	if !runner.Standalone() && *probeEvery > 0 {
		ticker := time.NewTicker(*probeEvery)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-probeDone:
					return
				case <-ticker.C:
					ctx, cancel := context.WithTimeout(context.Background(), *probeEvery)
					runner.Probe(ctx)
					cancel()
				}
			}
		}()
	}
	defer close(probeDone)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "smartndrd: %s serving on %s\n", *role, ln.Addr())
	if !runner.Standalone() {
		fmt.Fprintf(stderr, "smartndrd: routing across %d backends\n", runner.Ring().Backends())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		closeTrace()
		return fmt.Errorf("serve: %w", err)
	case s := <-sig:
		fmt.Fprintf(stderr, "smartndrd: %v, draining\n", s)
	case <-stop:
		fmt.Fprintln(stderr, "smartndrd: stop requested, draining")
	}

	// Stop admitting work and let the in-flight tail finish, then close
	// the listener and connections.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if drainErr != nil {
		fmt.Fprintf(stderr, "smartndrd: %v\n", drainErr)
	}
	shutCtx, cancelShut := context.WithTimeout(context.Background(), time.Second)
	defer cancelShut()
	httpSrv.Shutdown(shutCtx)
	if err := closeTrace(); err != nil {
		fmt.Fprintln(stderr, "smartndrd: trace:", err)
	}
	return drainErr
}

// parseBackends resolves the -role/-backends pair into a backend spec
// list. Standalone and worker roles take no backend list (they are the
// single in-process backend); frontend requires one. Each entry is
// [name=]url, where the url "loopback" selects the in-process backend
// (a frontend can serve a shard of the keyspace itself).
func parseBackends(role, list string) ([]cluster.BackendSpec, error) {
	switch role {
	case "standalone", "worker":
		if list != "" {
			return nil, fmt.Errorf("-backends is only valid with -role frontend")
		}
		return nil, nil
	case "frontend":
		if list == "" {
			return nil, fmt.Errorf("-role frontend requires -backends")
		}
	default:
		return nil, fmt.Errorf("unknown -role %q (standalone | worker | frontend)", role)
	}
	var specs []cluster.BackendSpec
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var spec cluster.BackendSpec
		if name, url, ok := strings.Cut(entry, "="); ok {
			spec = cluster.BackendSpec{Name: name, URL: url}
		} else {
			spec = cluster.BackendSpec{URL: entry}
		}
		if spec.URL == "loopback" {
			spec.URL = ""
			if spec.Name == "" {
				spec.Name = "loopback"
			}
		} else if !strings.HasPrefix(spec.URL, "http://") && !strings.HasPrefix(spec.URL, "https://") {
			// Catch misconfiguration at startup, not as a permanently
			// flapping shard at serve time: a bare token like "self" would
			// otherwise become an HTTP backend with a scheme-less base URL
			// that fails every call.
			return nil, fmt.Errorf("backend %q: URL %q is not absolute (want http(s)://host:port, or \"loopback\")", entry, spec.URL)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-backends has no entries")
	}
	return specs, nil
}

// startPprof serves net/http/pprof on addr when non-empty, on its own
// listener so profiling never shares a port with the service mux.
func startPprof(addr string, stderr io.Writer) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "smartndrd: pprof:", err)
		}
	}()
	fmt.Fprintf(stderr, "smartndrd: pprof on http://%s/debug/pprof/\n", addr)
}
