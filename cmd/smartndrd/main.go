// Command smartndrd serves the smartndr flow over HTTP/JSON: a
// long-running daemon that synthesizes and evaluates clock trees on
// demand, with content-addressed result caching, bounded admission, and
// graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	smartndrd -addr :8147
//	smartndrd -addr localhost:8147 -max-concurrent 4 -queue-depth 8
//	smartndrd -trace spans.jsonl -request-timeout 30s
//
// Endpoints (see docs/service.md and docs/observability.md):
//
//	POST /v1/flow     run one benchmark through one scheme
//	POST /v1/sweep    scheme×corner arm batch on one shared tree
//	GET  /v1/healthz  liveness (503 while draining)
//	GET  /v1/statsz   counters, latency percentiles, cache and admission state
//	GET  /v1/tracez   slowest + most recent request span trees
//	GET  /metricsz    Prometheus text exposition (counters, gauges, histograms)
//
// Telemetry is on by default: -metrics wires a span observer into the
// tracer chain so every request and engine phase lands in a latency
// histogram, and -tracez-capacity bounds the /v1/tracez buffer
// (0 disables the endpoint). -pprof serves net/http/pprof on a
// separate address. On SIGTERM or SIGINT the daemon stops admitting
// work (new requests get 503 + Retry-After), lets in-flight requests
// finish up to -drain-timeout, then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smartndr/internal/obs"
	"smartndr/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "smartndrd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body. ready, when non-nil, receives the
// bound listen address once the server is accepting connections; stop,
// when non-nil, triggers shutdown like a signal would (tests use it
// instead of delivering real signals).
func run(args []string, stderr io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("smartndrd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8147", "listen address")
	maxConc := fs.Int("max-concurrent", 0, "max requests executing at once (0 = all cores)")
	queueDepth := fs.Int("queue-depth", 0, "max requests waiting for a slot before 429 (0 = 2×max-concurrent)")
	reqTimeout := fs.Duration("request-timeout", 120*time.Second, "per-request deadline ceiling")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503 refusals")
	cacheEntries := fs.Int("cache-entries", 256, "result-cache capacity (entries)")
	workers := fs.Int("workers", 0, "sweep-arm fan-out bound (0 = all cores; results identical at any count)")
	maxSpecBytes := fs.Int64("max-spec-bytes", 0, "request-body size cap; oversize requests get 413 (0 = 1 MiB default)")
	traceFile := fs.String("trace", "", "write span events as JSON lines to this file")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	metrics := fs.Bool("metrics", true, "aggregate span latencies into /metricsz histograms")
	tracezCap := fs.Int("tracez-capacity", 64, "request span trees retained for /v1/tracez (0 disables)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	startPprof(*pprofAddr, stderr)

	// The sink chain: an optional JSONL file sink, wrapped (when -metrics
	// is on) by a SpanObserver that folds every completed span into a
	// per-path latency histogram on the way through. The observer must be
	// the tracer's direct sink so it sees all spans, including ones from
	// request-scoped tracers.
	var (
		tracer  *obs.Tracer
		spanObs *obs.SpanObserver
		sink    obs.Sink
		f       *os.File
	)
	if *traceFile != "" {
		var err error
		if f, err = os.Create(*traceFile); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		sink = obs.NewJSONL(f)
	}
	if *metrics {
		spanObs = obs.NewSpanObserver(sink)
		sink = spanObs
	}
	if sink != nil {
		tracer = obs.New(sink)
	}
	closeTrace := func() error {
		var err error
		if tracer != nil {
			err = tracer.Close()
		}
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}

	srv := serve.New(serve.Config{
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
		RetryAfter:     *retryAfter,
		CacheEntries:   *cacheEntries,
		Workers:        *workers,
		MaxBodyBytes:   *maxSpecBytes,
		Tracer:         tracer,
		SpanObs:        spanObs,
		TracezCapacity: *tracezCap,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "smartndrd: serving on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		closeTrace()
		return fmt.Errorf("serve: %w", err)
	case s := <-sig:
		fmt.Fprintf(stderr, "smartndrd: %v, draining\n", s)
	case <-stop:
		fmt.Fprintln(stderr, "smartndrd: stop requested, draining")
	}

	// Stop admitting work and let the in-flight tail finish, then close
	// the listener and connections.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if drainErr != nil {
		fmt.Fprintf(stderr, "smartndrd: %v\n", drainErr)
	}
	shutCtx, cancelShut := context.WithTimeout(context.Background(), time.Second)
	defer cancelShut()
	httpSrv.Shutdown(shutCtx)
	if err := closeTrace(); err != nil {
		fmt.Fprintln(stderr, "smartndrd: trace:", err)
	}
	return drainErr
}

// startPprof serves net/http/pprof on addr when non-empty, on its own
// listener so profiling never shares a port with the service mux.
func startPprof(addr string, stderr io.Writer) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "smartndrd: pprof:", err)
		}
	}()
	fmt.Fprintf(stderr, "smartndrd: pprof on http://%s/debug/pprof/\n", addr)
}
