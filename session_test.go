package smartndr_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"smartndr"
	"smartndr/internal/core"
	"smartndr/internal/testutil"
)

// sessionEdits generates one batch of valid random edits for a spec with
// n sinks and nodes tree nodes. Pure function of rng state — the harness
// relies on seeded reproducibility.
func sessionEdits(rng *rand.Rand, nSinks, nNodes int, die float64, count int) []smartndr.Edit {
	edits := make([]smartndr.Edit, 0, count)
	for i := 0; i < count; i++ {
		switch rng.Intn(6) {
		case 0, 1:
			edits = append(edits, smartndr.Edit{Op: core.OpMoveSink,
				Sink: rng.Intn(nSinks), X: rng.Float64() * die, Y: rng.Float64() * die})
		case 2:
			edits = append(edits, smartndr.Edit{Op: core.OpSinkCap,
				Sink: rng.Intn(nSinks), Cap: (1 + 3*rng.Float64()) * 1e-15})
		case 3:
			edits = append(edits, smartndr.Edit{Op: core.OpSinkRule,
				Sink: rng.Intn(nSinks), Rule: rng.Intn(4)})
		case 4:
			edits = append(edits, smartndr.Edit{Op: core.OpNodeRule,
				Node: rng.Intn(nNodes), Rule: rng.Intn(4)})
		default:
			edits = append(edits, smartndr.Edit{Op: core.OpInSlew,
				InSlewPS: 30 + 40*rng.Float64()})
		}
	}
	return edits
}

func metricsJSON(t *testing.T, m smartndr.Metrics) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSessionMatchesColdRun is the flow-level half of the differential
// contract: every prefix of a random edit sequence, applied warm through
// one session, yields metrics and a content address byte-identical to a
// cold RunSpecEdits of the same state.
func TestSessionMatchesColdRun(t *testing.T) {
	ctx := context.Background()
	seeds := 6
	steps := 5
	if testing.Short() {
		seeds, steps = 2, 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := testutil.UniformSpec(fmt.Sprintf("sess%d", seed), 48, 900, int64(100+seed))
			flow := smartndr.NewFlow(nil)
			sess, err := flow.OpenSession(ctx, spec, smartndr.SchemeSmart)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(9000 + seed)))
			var cumulative []smartndr.Edit
			for step := 0; step < steps; step++ {
				batch := sessionEdits(rng, spec.Sinks, sess.Nodes(), spec.DieX, 1+rng.Intn(4))
				cumulative = core.CanonicalEdits(append(cumulative, batch...))
				warm, err := sess.ApplyState(ctx, cumulative)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				coldFlow := smartndr.NewFlow(nil)
				_, coldRes, err := coldFlow.RunSpecEdits(ctx, spec, smartndr.SchemeSmart, cumulative)
				if err != nil {
					t.Fatalf("step %d cold: %v", step, err)
				}
				if w, c := metricsJSON(t, warm), metricsJSON(t, coldRes.Metrics); w != c {
					t.Fatalf("step %d: warm != cold\nwarm: %s\ncold: %s", step, w, c)
				}
				wk, err := sess.Key(cumulative)
				if err != nil {
					t.Fatal(err)
				}
				ck, err := coldFlow.CanonicalKeyEdits(spec, smartndr.SchemeSmart, cumulative)
				if err != nil {
					t.Fatal(err)
				}
				if wk != ck {
					t.Fatalf("step %d: key mismatch %s vs %s", step, wk, ck)
				}
			}
			st := sess.EngineStats()
			if st.IncRuns == 0 {
				t.Errorf("session never took the dirty-region path: %+v", st)
			}
		})
	}
}

// TestSessionRollbackBitwise: rolling the session back to a previously
// visited state reproduces that state's metrics bytes exactly.
func TestSessionRollbackBitwise(t *testing.T) {
	ctx := context.Background()
	spec := testutil.UniformSpec("roll", 40, 800, 7)
	flow := smartndr.NewFlow(nil)
	sess, err := flow.OpenSession(ctx, spec, smartndr.SchemeSmart)
	if err != nil {
		t.Fatal(err)
	}
	pristine := metricsJSON(t, sess.Result().Metrics)
	rng := rand.New(rand.NewSource(77))
	var history [][]smartndr.Edit
	var recorded []string
	var cumulative []smartndr.Edit
	for step := 0; step < 6; step++ {
		cumulative = core.CanonicalEdits(append(cumulative,
			sessionEdits(rng, spec.Sinks, sess.Nodes(), spec.DieX, 2)...))
		m, err := sess.ApplyState(ctx, cumulative)
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, cumulative)
		recorded = append(recorded, metricsJSON(t, m))
	}
	// Walk back through every recorded state, newest to oldest.
	for i := len(history) - 1; i >= 0; i-- {
		m, err := sess.ApplyState(ctx, history[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := metricsJSON(t, m); got != recorded[i] {
			t.Fatalf("rollback to state %d diverged\ngot:  %s\nwant: %s", i, got, recorded[i])
		}
	}
	m, err := sess.ApplyState(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricsJSON(t, m); got != pristine {
		t.Fatalf("rollback to pristine diverged\ngot:  %s\nwant: %s", got, pristine)
	}
}

// TestSessionRejectsBadEdits: validation failures surface as ErrEdit and
// leave the session state untouched.
func TestSessionRejectsBadEdits(t *testing.T) {
	ctx := context.Background()
	spec := testutil.UniformSpec("bad", 30, 700, 3)
	flow := smartndr.NewFlow(nil)
	sess, err := flow.OpenSession(ctx, spec, smartndr.SchemeBlanket)
	if err != nil {
		t.Fatal(err)
	}
	good := []smartndr.Edit{{Op: core.OpSinkCap, Sink: 1, Cap: 2e-15}}
	before, err := sess.ApplyState(ctx, good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ApplyState(ctx, []smartndr.Edit{
		{Op: core.OpSinkCap, Sink: spec.Sinks + 5, Cap: 2e-15},
	}); !errors.Is(err, smartndr.ErrEdit) {
		t.Fatalf("out-of-range sink: err = %v, want ErrEdit", err)
	}
	after, err := sess.ApplyState(ctx, good)
	if err != nil {
		t.Fatal(err)
	}
	if metricsJSON(t, before) != metricsJSON(t, after) {
		t.Fatal("rejected edit perturbed session state")
	}
}
