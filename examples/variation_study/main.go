// Variation study: why clock trees use NDRs at all. Wide wires attenuate
// lithographic width variation (an absolute CD error is a smaller relative
// error on a wide wire), so the blanket-NDR tree holds its skew under
// process variation where the all-default tree scatters. The question the
// paper answers: does the smart assignment keep that robustness after
// shedding the blanket's capacitance?
//
//	go run ./examples/variation_study
package main

import (
	"fmt"
	"log"

	"smartndr"
)

func main() {
	bm, err := smartndr.Benchmark("cns02")
	if err != nil {
		log.Fatal(err)
	}
	flow := smartndr.NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		log.Fatal(err)
	}

	// 4 nm CD sigma, 3% buffer sigma, 60% spatially correlated.
	params := smartndr.VariationParams{
		WidthSigma:  0.004,
		BufSigma:    0.03,
		SpatialFrac: 0.6,
		Samples:     400,
		Seed:        2013,
	}

	fmt.Printf("%d sinks, %d Monte Carlo samples per scheme\n\n", len(bm.Sinks), params.Samples)
	fmt.Printf("%-14s %-14s %-12s %-12s %-12s %-12s\n",
		"scheme", "nominal (ps)", "mean (ps)", "sigma (ps)", "P95 (ps)", "power (mW)")
	for _, s := range []smartndr.Scheme{
		smartndr.SchemeAllDefault, smartndr.SchemeTrunk,
		smartndr.SchemeSmart, smartndr.SchemeBlanket,
	} {
		r, err := flow.Apply(built, s)
		if err != nil {
			log.Fatal(err)
		}
		mc, err := flow.MonteCarlo(r.Tree, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-14.2f %-12.2f %-12.2f %-12.2f %-12.3f\n",
			s, r.Metrics.Skew*1e12, mc.MeanSkew*1e12, mc.StdSkew*1e12,
			mc.P95Skew*1e12, r.Metrics.Power.Total()*1e3)
	}
	fmt.Println("\nexpected shape: all-default scatters widest; smart tracks blanket's")
	fmt.Println("distribution at meaningfully lower power.")
}
