// Quickstart: synthesize a clock tree for a built-in benchmark, run the
// smart NDR assignment, and compare it with the conventional blanket-NDR
// flow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smartndr"
)

func main() {
	// A built-in benchmark: 1200 flip-flops over a ~3 mm die.
	bm, err := smartndr.Benchmark("cns01")
	if err != nil {
		log.Fatal(err)
	}

	// The default flow: 45 nm-class technology and buffer library.
	flow := smartndr.NewFlow(nil)

	// Build once: topology, zero-skew embedding, buffering.
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d-sink tree: %d buffers in %d leaf clusters\n\n",
		len(bm.Sinks), built.Buffers, built.NumClusters)

	// Conventional flow: blanket 2W2S NDR everywhere.
	blanket, err := flow.Apply(built, smartndr.SchemeBlanket)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's flow: per-edge smart assignment.
	smart, err := flow.Apply(built, smartndr.SchemeSmart)
	if err != nil {
		log.Fatal(err)
	}

	te := flow.Config().Tech
	for _, r := range []*smartndr.Result{blanket, smart} {
		m := r.Metrics
		fmt.Printf("%-12s power %7.3f mW  skew %6.2f ps  worst slew %6.2f ps  violations %d\n",
			r.Scheme, m.Power.Total()*1e3, m.Skew*1e12, m.WorstSlew*1e12, m.SlewViol)
	}
	saving := 1 - smart.Metrics.Power.Total()/blanket.Metrics.Power.Total()
	fmt.Printf("\nsmart NDR saves %.1f%% clock power at skew ≤ %.0f ps and slew ≤ %.0f ps\n",
		saving*100, te.MaxSkew*1e12, te.MaxSlew*1e12)
	fmt.Printf("(%d edge downgrades, %d recovery upgrades, %.0f µm of balancing wire)\n",
		smart.Stats.Downgrades, smart.Stats.Upgrades, smart.Stats.RepairWire)
}
