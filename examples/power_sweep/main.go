// Power sweep: trace the power/slew-constraint tradeoff of smart NDR
// assignment on a clustered SoC-style benchmark. Under a tight transition
// budget every edge needs the strong rule (the blanket flow is right);
// under a relaxed one almost nothing does.
//
//	go run ./examples/power_sweep
package main

import (
	"fmt"
	"log"

	"smartndr"
	"smartndr/internal/core"
	"smartndr/internal/workload"
)

func main() {
	bm, err := smartndr.GenerateBenchmark(smartndr.BenchSpec{
		Name: "sweepdemo", Dist: workload.Clustered, Sinks: 1000,
		DieX: 4500, DieY: 3600, CapMin: 1e-15, CapMax: 4e-15,
		Seed: 7, Clusters: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	flow := smartndr.NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		log.Fatal(err)
	}
	blanket, err := flow.Apply(built, smartndr.SchemeBlanket)
	if err != nil {
		log.Fatal(err)
	}
	def, err := flow.Apply(built, smartndr.SchemeAllDefault)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anchors: blanket %.3f mW, all-default %.3f mW\n\n",
		blanket.Metrics.Power.Total()*1e3, def.Metrics.Power.Total()*1e3)
	fmt.Printf("%-18s %-12s %-12s %-10s\n", "slew limit (ps)", "power (mW)", "vs blanket", "downgrades")

	for _, lim := range []float64{70e-12, 78e-12, 85e-12, 100e-12, 125e-12, 160e-12} {
		// Sweep the optimizer's slew constraint; everything else defaults.
		f := smartndr.NewFlow(&smartndr.FlowConfig{
			Opt: core.Config{MaxSlew: lim},
		})
		res, err := f.Apply(built, smartndr.SchemeSmart)
		if err != nil {
			log.Fatal(err)
		}
		p := res.Metrics.Power.Total()
		fmt.Printf("%-18.0f %-12.3f %-12s %-10d\n",
			lim*1e12, p*1e3,
			fmt.Sprintf("%+.1f%%", (p/blanket.Metrics.Power.Total()-1)*100),
			res.Stats.Downgrades)
	}
	fmt.Println("\nbelow the construction's native slew capability the optimizer pays for upgrades;")
	fmt.Println("once the budget is feasible, every edge drops to its cheapest legal rule class —")
	fmt.Println("the discrete-menu Pareto knee the paper's title claims.")
}
