// Custom technology: define your own process (layer parasitics, NDR rule
// menu, constraints) and buffer library, then run the flow on it. This is
// the extension point a downstream user adapting the library to their PDK
// would exercise.
//
//	go run ./examples/custom_tech
package main

import (
	"fmt"
	"log"

	"smartndr"
	"smartndr/internal/cell"
	"smartndr/internal/tech"
	"smartndr/internal/workload"
)

func main() {
	// A hypothetical 32 nm-class node: thinner, more resistive wires, a
	// richer NDR menu including an asymmetric 1.5W2S class, and tighter
	// constraints.
	te := &tech.Tech{
		Name: "tech32-custom",
		Vdd:  0.9,
		Freq: 1.5e9,
		Layer: tech.Layer{
			Name:     "M4M5",
			MinWidth: 0.050,
			MinSpace: 0.050,
			RSheet:   0.30, // 6 Ω/µm at 1W
			CArea:    1.6e-15,
			CFringe:  0.025e-15,
			CCouple:  0.095e-15,
		},
		Rules: []tech.RuleClass{
			{Name: "1W1S", WMult: 1, SMult: 1},
			{Name: "1W2S", WMult: 1, SMult: 2},
			{Name: "1.5W2S", WMult: 1.5, SMult: 2},
			{Name: "2W2S", WMult: 2, SMult: 2},
			{Name: "3W2S", WMult: 3, SMult: 2},
		},
		DefaultRule:    0,
		BlanketRule:    3,
		ViaR:           2.5,
		ViaC:           0.04e-15,
		MaxSlew:        90e-12,
		MaxSkew:        20e-12,
		MaxCapPerStage: 90e-15,
	}
	if err := te.Validate(); err != nil {
		log.Fatal(err)
	}

	// A matching buffer library: faster, smaller cells.
	gp := cell.GenParams{
		R1:       3200,
		Cin1:     0.9e-15,
		T0:       11e-12,
		SlewSens: 0.18,
		Drives:   []float64{2, 4, 8, 16, 32, 64},
		Leak1:    8e-9,
		Area1:    0.5,
	}
	lib, err := cell.Generate("clkbuf32", gp)
	if err != nil {
		log.Fatal(err)
	}

	bm, err := smartndr.GenerateBenchmark(smartndr.BenchSpec{
		Name: "soc32", Dist: workload.Clustered, Sinks: 1500,
		DieX: 3000, DieY: 2400, CapMin: 0.8e-15, CapMax: 2.5e-15,
		Seed: 32, Clusters: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	flow := smartndr.NewFlow(&smartndr.FlowConfig{Tech: te, Library: lib})
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom node %s: %d buffers, %d clusters\n\n", te.Name, built.Buffers, built.NumClusters)

	for _, s := range []smartndr.Scheme{smartndr.SchemeBlanket, smartndr.SchemeSmart} {
		r, err := flow.Apply(built, s)
		if err != nil {
			log.Fatal(err)
		}
		m := r.Metrics
		fmt.Printf("%-12s power %7.3f mW  skew %5.2f ps  worst slew %5.2f ps  viol %d\n",
			s, m.Power.Total()*1e3, m.Skew*1e12, m.WorstSlew*1e12, m.SlewViol)
		if s == smartndr.SchemeSmart {
			fmt.Println("\nwirelength by rule class:")
			for i, l := range m.LenByRule {
				if l > 0 {
					fmt.Printf("  %-8s %8.2f mm (%.1f%%)\n",
						te.Rule(i).Name, l/1000, 100*l/m.Wirelength)
				}
			}
		}
	}
}
