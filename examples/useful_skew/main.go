// Useful skew: instead of zero skew, realize an *intentional* arrival
// schedule. A pipeline whose critical paths all flow left-to-right gains
// margin if downstream register banks receive the clock a little later —
// the classic useful-skew transformation. This example schedules the right
// half of the die 12 ps late and verifies the tree realizes it.
//
//	go run ./examples/useful_skew
package main

import (
	"fmt"
	"log"
	"math"

	"smartndr"
	"smartndr/internal/ctree"
	"smartndr/internal/workload"
)

func main() {
	bm, err := smartndr.GenerateBenchmark(smartndr.BenchSpec{
		Name: "pipeline", Dist: workload.Grid, Sinks: 600,
		DieX: 3000, DieY: 2400, CapMin: 1e-15, CapMax: 3e-15, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	flow := smartndr.NewFlow(nil)
	built, err := flow.Build(bm.Sinks, bm.Src)
	if err != nil {
		log.Fatal(err)
	}
	r, err := flow.Apply(built, smartndr.SchemeSmart)
	if err != nil {
		log.Fatal(err)
	}

	// Bank-granular schedule: banks (leaf buffer stages) on the right half
	// lag by 12 ps. Schedules must align to banks — per-flip-flop offsets
	// inside one stage cannot be realized with wire alone.
	const lag = 12e-12
	targets := make([]float64, len(bm.Sinks))
	tr := r.Tree
	for i := range tr.Nodes {
		si := tr.Nodes[i].SinkIdx
		if si == ctree.NoSink {
			continue
		}
		v := i
		for v != ctree.NoNode && tr.Nodes[v].BufIdx == ctree.NoBuf {
			v = tr.Nodes[v].Parent
		}
		if v != ctree.NoNode && tr.Nodes[v].Loc.X > bm.Spec.DieX/2 {
			targets[si] = lag
		}
	}
	if err := flow.RealizeSchedule(tr, targets, 8e-12); err != nil {
		log.Fatal(err)
	}

	// Verify: mean arrival of right banks minus left banks ≈ the lag.
	timing, err := flow.Timing(tr)
	if err != nil {
		log.Fatal(err)
	}
	var sumL, sumR float64
	var nL, nR int
	for i := range tr.Nodes {
		si := tr.Nodes[i].SinkIdx
		if si == ctree.NoSink {
			continue
		}
		if targets[si] > 0 {
			sumR += timing.Arrival[i]
			nR++
		} else {
			sumL += timing.Arrival[i]
			nL++
		}
	}
	gotLag := sumR/float64(nR) - sumL/float64(nL)
	fmt.Printf("scheduled lag: %.1f ps    realized mean lag: %.1f ps (error %.1f ps)\n",
		lag*1e12, gotLag*1e12, math.Abs(gotLag-lag)*1e12)
	m, err := flow.Evaluate(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after scheduling: power %.3f mW, worst slew %.2f ps, violations %d\n",
		m.Power.Total()*1e3, m.WorstSlew*1e12, m.SlewViol)
	fmt.Println("\nright-half banks now receive the clock intentionally late — setup margin")
	fmt.Println("borrowed for left-to-right pipeline paths, with slews still legal.")
}
