package smartndr_test

// End-to-end integration invariants: determinism and the cross-scheme
// ordering the reproduction claims, exercised through the public facade
// exactly as a downstream user would.

import (
	"math"
	"testing"

	"smartndr"
	"smartndr/internal/testutil"
)

// TestPipelineDeterministic: identical seeds must give bit-identical
// metrics across full pipeline runs — the property that makes every
// experiment in EXPERIMENTS.md reproducible.
func TestPipelineDeterministic(t *testing.T) {
	run := func() smartndr.Metrics {
		bm := testutil.Named(t, "cns01")
		return testutil.RunScheme(t, nil, bm, smartndr.SchemeSmart).Metrics
	}
	a := run()
	b := run()
	if a.Power.Total() != b.Power.Total() || a.Skew != b.Skew ||
		a.Wirelength != b.Wirelength || a.WorstSlew != b.WorstSlew {
		t.Errorf("pipeline not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestSchemeOrderingInvariants pins the relative ordering every benchmark
// exhibits: cap(all-default) ≤ cap(trunk) ≤ cap(blanket), smart below
// blanket, and only smart guaranteed inside both bounds.
func TestSchemeOrderingInvariants(t *testing.T) {
	bm := testutil.Named(t, "cns02")
	flow, built := testutil.BuildFlow(t, nil, bm)
	get := func(s smartndr.Scheme) smartndr.Metrics {
		return testutil.Apply(t, flow, built, s).Metrics
	}
	def := get(smartndr.SchemeAllDefault)
	trunk := get(smartndr.SchemeTrunk)
	blanket := get(smartndr.SchemeBlanket)
	smart := get(smartndr.SchemeSmart)

	if !(def.SwitchedCap <= trunk.SwitchedCap && trunk.SwitchedCap <= blanket.SwitchedCap) {
		t.Errorf("cap ordering broken: def %.3g trunk %.3g blanket %.3g",
			def.SwitchedCap, trunk.SwitchedCap, blanket.SwitchedCap)
	}
	if smart.Power.Total() >= blanket.Power.Total() {
		t.Errorf("smart %.3f mW not below blanket %.3f mW",
			smart.Power.Total()*1e3, blanket.Power.Total()*1e3)
	}
	te := flow.Config().Tech
	if smart.SlewViol != 0 || smart.Skew > te.MaxSkew {
		t.Errorf("smart constraint broken: viol=%d skew=%.2fps", smart.SlewViol, smart.Skew*1e12)
	}
	// The blanket's track-area premium: smart must also use less routing
	// resource than blanket (cheaper classes are narrower overall).
	if smart.TrackArea >= blanket.TrackArea {
		t.Errorf("smart track area %.0f ≥ blanket %.0f", smart.TrackArea, blanket.TrackArea)
	}
	// Insertion delay sanity: all schemes within 2× of each other.
	lo := math.Min(def.MaxInsDelay, smart.MaxInsDelay)
	hi := math.Max(blanket.MaxInsDelay, smart.MaxInsDelay)
	if hi > 2*lo {
		t.Errorf("insertion delays implausibly spread: %.2f…%.2f ps", lo*1e12, hi*1e12)
	}
}
