package smartndr

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"smartndr/internal/cell"
	"smartndr/internal/core"
	"smartndr/internal/ctree"
	"smartndr/internal/cts"
	"smartndr/internal/geom"
	"smartndr/internal/hier"
	"smartndr/internal/obs"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
	"smartndr/internal/variation"
	"smartndr/internal/workload"
)

// Re-exported types: the full engine lives in internal packages; these
// aliases are the supported public surface.
type (
	// Sink is a clock endpoint (location + pin capacitance).
	Sink = ctree.Sink
	// Point is a die location in microns.
	Point = geom.Point
	// Tree is a synthesized clock tree.
	Tree = ctree.Tree
	// Tech is a technology description.
	Tech = tech.Tech
	// Library is a clock buffer library.
	Library = cell.Library
	// Metrics is the evaluation record (power, skew, slew, wirelength...).
	Metrics = core.Metrics
	// OptStats reports what the smart optimizer did.
	OptStats = core.Stats
	// BenchSpec describes a generated benchmark.
	BenchSpec = workload.Spec
	// Edit is one serialized session delta (sink move, pin-cap change,
	// per-edge rule override, input-slew override). See internal/core.
	Edit = core.Edit
	// VariationParams configure Monte Carlo robustness analysis.
	VariationParams = variation.Params
	// VariationStats summarize a Monte Carlo run.
	VariationStats = variation.Stats
	// Tracer records hierarchical spans and metrics of a flow run. A nil
	// tracer disables instrumentation at no cost.
	Tracer = obs.Tracer
	// TraceSink receives finished span events.
	TraceSink = obs.Sink
	// SpanEvent is one finished span as delivered to a sink.
	SpanEvent = obs.SpanEvent
	// TraceCollector is an in-memory sink for post-run inspection.
	TraceCollector = obs.Collector
)

// NewTracer returns a tracer emitting to the sink; a nil sink yields a
// nil (disabled) tracer. Attach it via FlowConfig.Tracer.
func NewTracer(sink TraceSink) *Tracer { return obs.New(sink) }

// NewJSONLSink streams span events as JSON lines to w.
func NewJSONLSink(w io.Writer) TraceSink { return obs.NewJSONL(w) }

// NewTreeSink renders the span tree to w when the tracer is closed.
func NewTreeSink(w io.Writer) TraceSink { return obs.NewTree(w) }

// NewTraceCollector returns an in-memory sink; its Events feed
// report.TimingTable or custom analysis.
func NewTraceCollector() *TraceCollector { return obs.NewCollector() }

// SpanObserver is a sink tee that folds every completed span into a
// per-path latency histogram on its way to the next sink (nil for
// aggregation only). Snapshot exposes the distributions.
type SpanObserver = obs.SpanObserver

// HistogramSnapshot is a point-in-time copy of one latency histogram,
// with interpolated quantiles via Quantile.
type HistogramSnapshot = obs.HistogramSnapshot

// NewSpanObserver returns a SpanObserver forwarding to next (nil:
// aggregate only). Use it as the tracer's sink to get per-phase
// latency distributions from an instrumented flow.
func NewSpanObserver(next TraceSink) *SpanObserver { return obs.NewSpanObserver(next) }

// Scheme selects a routing-rule assignment policy.
type Scheme int

const (
	// SchemeAllDefault routes every clock edge at minimum width/spacing.
	// Cheapest possible capacitance; transitions and variation robustness
	// are whatever they happen to be.
	SchemeAllDefault Scheme = iota
	// SchemeBlanket applies the technology's blanket NDR (2W2S) to every
	// edge — the conventional flow the paper argues overpays.
	SchemeBlanket
	// SchemeTopK applies the blanket NDR to the top K buffer levels and
	// the default rule below — the rule-of-thumb baseline.
	SchemeTopK
	// SchemeSmart runs the paper's per-edge assignment: greedy downgrade
	// to the cheapest rule class meeting slew and skew, plus skew repair.
	SchemeSmart
	// SchemeTrunk applies the blanket NDR to the clock trunk (all stages
	// that still drive buffers) and the default rule to the leaf stages —
	// the designer rule-of-thumb baseline.
	SchemeTrunk
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeAllDefault:
		return "all-default"
	case SchemeBlanket:
		return "blanket-ndr"
	case SchemeTopK:
		return "top-k"
	case SchemeSmart:
		return "smart-ndr"
	case SchemeTrunk:
		return "trunk-ndr"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// HierConfig opts a flow into partitioned hierarchical construction for
// large sink sets. The zero value disables it: every RunSpec builds one
// flat tree regardless of size.
type HierConfig struct {
	// MaxRegionSinks, when positive, enables the hierarchical pipeline
	// for specs larger than the bound and caps the sink count of one
	// region (see internal/hier). Specs at or under the bound still build
	// flat, so small runs are unaffected by opting in.
	MaxRegionSinks int `json:"max_region_sinks,omitempty"`
	// SkewSplit is the fraction of the skew budget granted to
	// intra-region skew (default 0.5); the rest absorbs inter-region
	// stitching error.
	SkewSplit float64 `json:"skew_split,omitempty"`
}

// FlowConfig parameterizes a Flow. The zero value (or nil pointer to
// NewFlow) selects the 45 nm-class defaults.
type FlowConfig struct {
	Tech    *Tech       // nil → tech.Tech45()
	Library *Library    // nil → DefaultLibraryFor(Tech)
	CTS     cts.Options // tree construction knobs
	Opt     core.Config // smart-optimizer knobs
	// TopK is K for SchemeTopK. Zero is the "unset" sentinel and resolves
	// to the default of 2 — an explicit K=0 via Apply(b, SchemeTopK) is
	// therefore not expressible here; use ApplyTopK(b, 0), which honors
	// K=0 literally (every edge on the default rule), for K sweeps.
	TopK   int
	InSlew float64 // root input transition (default 40 ps)
	// Tracer, when non-nil, instruments every flow entry point with
	// hierarchical spans (build phases, optimizer passes, STA splits,
	// Monte Carlo trials) and run counters. See internal/obs; construct
	// with NewTracer and a sink. Nil disables instrumentation at no cost.
	Tracer *Tracer
	// Workers bounds parallel sections (Monte Carlo trials, hierarchical
	// region builds, sharded benchmark generation): 0 uses
	// runtime.GOMAXPROCS(0), 1 forces serial execution. Results are
	// bit-identical for every value — each parallel unit draws from an
	// RNG substream derived from (Seed, unit index) alone and lands in an
	// index-addressed slot. See docs/performance.md.
	Workers int
	// Hier opts RunSpec into partitioned hierarchical construction for
	// specs larger than Hier.MaxRegionSinks. Zero value: always flat.
	Hier HierConfig
}

// DefaultLibraryFor returns the built-in buffer library matching the
// technology: the 65 nm library for 65 nm-class nodes (Tech.Node == 65,
// with a name-based fallback for legacy Tech values), the 45 nm library
// otherwise.
func DefaultLibraryFor(te *Tech) *Library {
	if te != nil && (te.Node == 65 || (te.Node == 0 && te.Name == "tech65")) {
		return cell.Default65()
	}
	return cell.Default45()
}

// Flow runs clock-tree synthesis and rule assignment.
type Flow struct {
	cfg FlowConfig
}

// NewFlow returns a flow with defaults filled in.
func NewFlow(cfg *FlowConfig) *Flow {
	c := FlowConfig{}
	if cfg != nil {
		c = *cfg
	}
	if c.Tech == nil {
		c.Tech = tech.Tech45()
	}
	if c.Library == nil {
		c.Library = DefaultLibraryFor(c.Tech)
	}
	if c.TopK == 0 {
		c.TopK = 2
	}
	if c.InSlew == 0 {
		c.InSlew = 40e-12
	}
	return &Flow{cfg: c}
}

// Config returns the resolved configuration.
func (f *Flow) Config() FlowConfig { return f.cfg }

// Built is a synthesized clock tree ready for scheme application. The
// embedded tree carries the blanket rule on every edge.
type Built struct {
	Tree        *Tree
	NumClusters int
	Buffers     int
}

// Build synthesizes the buffered, zero-skew clock tree for the sinks.
func (f *Flow) Build(sinks []Sink, src Point) (*Built, error) {
	if len(sinks) == 0 {
		return nil, errors.New("smartndr: no sinks")
	}
	sp := f.cfg.Tracer.Start("flow.build", obs.I("sinks", len(sinks)))
	defer sp.End()
	f.cfg.Tracer.Gauge("flow.sink_count", float64(len(sinks)))
	opt := f.cfg.CTS
	if opt.Tracer == nil {
		opt.Tracer = f.cfg.Tracer
	}
	res, err := cts.Build(sinks, src, f.cfg.Tech, f.cfg.Library, opt)
	if err != nil {
		return nil, err
	}
	res.Tree.SetAllRules(f.cfg.Tech.BlanketRule)
	return &Built{
		Tree:        res.Tree,
		NumClusters: res.NumClusters,
		Buffers:     res.Tree.BufferCount(),
	}, nil
}

// Result is one scheme applied to a built tree.
type Result struct {
	Scheme  Scheme
	Tree    *Tree // the scheme's own clone; the Built tree is untouched
	Metrics Metrics
	// Stats is non-nil for SchemeSmart.
	Stats *OptStats
}

// Apply evaluates a rule-assignment scheme on a clone of the built tree.
func (f *Flow) Apply(b *Built, scheme Scheme) (*Result, error) {
	if b == nil || b.Tree == nil {
		return nil, errors.New("smartndr: nil built tree")
	}
	sp := f.cfg.Tracer.Start("flow.apply", obs.S("scheme", scheme.String()))
	defer sp.End()
	te, lib := f.cfg.Tech, f.cfg.Library
	t := b.Tree.Clone()
	res := &Result{Scheme: scheme, Tree: t}
	switch scheme {
	case SchemeAllDefault:
		core.AssignAll(t, te.DefaultRule)
	case SchemeBlanket:
		core.AssignAll(t, te.BlanketRule)
	case SchemeTopK:
		core.AssignTopLevels(t, te, f.cfg.TopK)
	case SchemeTrunk:
		core.AssignTrunk(t, te)
	case SchemeSmart:
		core.AssignAll(t, te.BlanketRule)
		opt := f.cfg.Opt
		if opt.Tracer == nil {
			opt.Tracer = f.cfg.Tracer
		}
		stats, err := core.Optimize(t, te, lib, opt)
		if err != nil {
			return nil, err
		}
		res.Stats = stats
	default:
		return nil, fmt.Errorf("smartndr: unknown scheme %d", int(scheme))
	}
	m, _, err := core.EvaluateTr(t, te, lib, f.cfg.InSlew, f.cfg.Tracer)
	if err != nil {
		return nil, err
	}
	res.Metrics = m
	return res, nil
}

// RunSpec is the one-call, context-accepting form of the flow a
// long-running service uses: generate the benchmark described by spec,
// synthesize the clock tree, and apply the scheme. The context is
// honored at phase granularity — it is checked before generation,
// before building, and before applying, so a cancelled or expired
// request stops at the next phase boundary rather than mid-phase (the
// engine phases themselves are deterministic and uninterruptible).
func (f *Flow) RunSpec(ctx context.Context, spec BenchSpec, scheme Scheme) (*Built, *Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	bm, err := workload.GenerateP(spec, f.cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if h := f.cfg.Hier; h.MaxRegionSinks > 0 && len(bm.Sinks) > h.MaxRegionSinks {
		return f.RunHier(ctx, bm.Sinks, bm.Src, scheme)
	}
	built, err := f.Build(bm.Sinks, bm.Src)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	res, err := f.Apply(built, scheme)
	if err != nil {
		return nil, nil, err
	}
	return built, res, nil
}

// RunSpecEdits is RunSpec followed by a set of session edits: the
// benchmark is generated, built, and scheme-optimized exactly as a plain
// run (edits never influence construction or optimization — they model
// post-synthesis ECOs), then the canonical edit state is applied to the
// result tree and the metrics re-evaluated. This is the cold reference
// the session differential harness compares warm deltas against: a
// session sitting at the same canonical edit state must return these
// bytes.
func (f *Flow) RunSpecEdits(ctx context.Context, spec BenchSpec, scheme Scheme, edits []Edit) (*Built, *Result, error) {
	built, res, err := f.RunSpec(ctx, spec, scheme)
	if err != nil {
		return nil, nil, err
	}
	canon := core.CanonicalEdits(edits)
	if len(canon) == 0 {
		return built, res, nil
	}
	sp := f.cfg.Tracer.Start("flow.apply_edits", obs.I("edits", len(canon)))
	defer sp.End()
	te, lib := f.cfg.Tech, f.cfg.Library
	eco, err := core.NewECO(res.Tree, te)
	if err != nil {
		return nil, nil, err
	}
	if err := eco.SetState(canon, nil); err != nil {
		return nil, nil, err
	}
	m, _, err := core.EvaluateTr(res.Tree, te, lib, eco.InSlew(f.cfg.InSlew), f.cfg.Tracer)
	if err != nil {
		return nil, nil, err
	}
	res.Metrics = m
	return built, res, nil
}

// RunHier builds the clock tree with the partitioned hierarchical
// pipeline (see internal/hier): sinks are split into regions of at most
// Hier.MaxRegionSinks, each region is synthesized (and, for SchemeSmart,
// rule-optimized) independently on the flow's worker pool, and the
// region trees are stitched under a delay-balancing top tree, then
// globally skew-repaired. The result is bit-identical at any Workers
// value. For SchemeSmart and SchemeBlanket the returned tree carries the
// scheme natively; the remaining schemes are realized by re-assigning
// rules on the stitched tree, exactly as Apply does on a flat build.
//
// Unlike the flat Build/Apply split, the hierarchical pipeline fuses
// construction and optimization (region insertion delays must be
// measured *after* optimization for the top tree to balance them), so
// Built.Tree and Result.Tree are the same tree here.
func (f *Flow) RunHier(ctx context.Context, sinks []Sink, src Point, scheme Scheme) (*Built, *Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	sp := f.cfg.Tracer.Start("flow.run_hier",
		obs.I("sinks", len(sinks)), obs.S("scheme", scheme.String()))
	defer sp.End()
	f.cfg.Tracer.Gauge("flow.sink_count", float64(len(sinks)))
	te, lib := f.cfg.Tech, f.cfg.Library
	hcfg := hier.Config{
		MaxRegionSinks: f.cfg.Hier.MaxRegionSinks,
		SkewSplit:      f.cfg.Hier.SkewSplit,
		Smart:          scheme == SchemeSmart,
		Workers:        f.cfg.Workers,
		InSlew:         f.cfg.InSlew,
		CTS:            f.cfg.CTS,
		Opt:            f.cfg.Opt,
		Tracer:         f.cfg.Tracer,
	}
	hres, err := hier.Build(ctx, sinks, src, te, lib, hcfg)
	if err != nil {
		return nil, nil, err
	}
	t := hres.Tree
	res := &Result{Scheme: scheme, Tree: t, Stats: hres.Opt}
	switch scheme {
	case SchemeSmart, SchemeBlanket:
		// Carried natively by the hierarchical build.
	case SchemeAllDefault:
		core.AssignAll(t, te.DefaultRule)
	case SchemeTopK:
		core.AssignTopLevels(t, te, f.cfg.TopK)
	case SchemeTrunk:
		core.AssignTrunk(t, te)
	default:
		return nil, nil, fmt.Errorf("smartndr: unknown scheme %d", int(scheme))
	}
	m, _, err := core.EvaluateTr(t, te, lib, f.cfg.InSlew, f.cfg.Tracer)
	if err != nil {
		return nil, nil, err
	}
	res.Metrics = m
	built := &Built{
		Tree:        t,
		NumClusters: hres.NumRegions,
		Buffers:     t.BufferCount(),
	}
	return built, res, nil
}

// flowKeyVersion prefixes every canonical run serialization. Bump it
// whenever the key format (or anything about result semantics) changes
// so stale content-addressed cache entries can never alias new results.
const flowKeyVersion = "smartndr/flow/v2"

// flowKeyVersionEdits is the version stamped on runs that carry session
// edits. Edit-free runs keep flowKeyVersion — their serialization (the
// Edits field is omitempty) and therefore their content addresses are
// bitwise what they were before sessions existed, so warm caches survive
// the upgrade; the golden-key regression test pins that.
const flowKeyVersionEdits = "smartndr/flow/v3"

// runKey is the canonical serialization of everything that determines a
// RunSpec result: the benchmark spec, the full technology and buffer
// library, the scheme, and every resolved engine knob. Tracer fields
// and Workers are deliberately absent — instrumentation and throughput
// knobs never change results (the determinism suite proves it), so two
// requests differing only there must share a content address.
type runKey struct {
	V       string      `json:"v"`
	Spec    BenchSpec   `json:"spec"`
	Tech    *Tech       `json:"tech"`
	Library *Library    `json:"library"`
	Scheme  int         `json:"scheme"`
	TopK    int         `json:"top_k"`
	InSlew  float64     `json:"in_slew"`
	CTS     cts.Options `json:"cts"`
	Opt     core.Config `json:"opt"`
	Hier    HierConfig  `json:"hier"`
	// Edits is the canonical session edit state, nil for plain runs so
	// the field vanishes from edit-free serializations.
	Edits []core.Edit `json:"edits,omitempty"`
}

// CanonicalRun returns the canonical byte serialization hashed by
// CanonicalKey. Exposed so tests and tools can inspect exactly what the
// content address covers.
func (f *Flow) CanonicalRun(spec BenchSpec, scheme Scheme) ([]byte, error) {
	return f.CanonicalRunEdits(spec, scheme, nil)
}

// CanonicalRunEdits is CanonicalRun for a run carrying session edits. The
// edits are canonicalized first, so every edit sequence reaching the same
// state serializes — and hashes — identically. With no surviving edits
// the serialization (and version stamp) is exactly CanonicalRun's.
func (f *Flow) CanonicalRunEdits(spec BenchSpec, scheme Scheme, edits []Edit) ([]byte, error) {
	k := runKey{
		V:       flowKeyVersion,
		Spec:    spec,
		Tech:    f.cfg.Tech,
		Library: f.cfg.Library,
		Scheme:  int(scheme),
		TopK:    f.cfg.TopK,
		InSlew:  f.cfg.InSlew,
		CTS:     f.cfg.CTS,
		Opt:     f.cfg.Opt,
		Hier:    f.cfg.Hier,
		Edits:   core.CanonicalEdits(edits),
	}
	if len(k.Edits) > 0 {
		k.V = flowKeyVersionEdits
	}
	// Zero the non-semantic fields (a nil and a live tracer must
	// serialize identically).
	k.CTS.Tracer = nil
	k.Opt.Tracer = nil
	return json.Marshal(k)
}

// CanonicalKey returns the content address of a RunSpec outcome: the
// SHA-256 (hex) of the canonical serialization of (spec, technology,
// library, scheme, resolved knobs). Identical keys mean byte-identical
// results, which is what makes the address safe to use as a cache key
// and a cross-run dedup handle.
func (f *Flow) CanonicalKey(spec BenchSpec, scheme Scheme) (string, error) {
	return f.CanonicalKeyEdits(spec, scheme, nil)
}

// CanonicalKeyEdits is CanonicalKey for an edited run: the content
// address of RunSpecEdits' outcome. Every session state has one — two
// sessions (or a session and a cold run) in the same edit state share it.
func (f *Flow) CanonicalKeyEdits(spec BenchSpec, scheme Scheme, edits []Edit) (string, error) {
	b, err := f.CanonicalRunEdits(spec, scheme, edits)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ApplyTopK evaluates the TopK scheme at a specific K (for sweeps). K is
// honored literally — ApplyTopK(b, 0) is the supported way to measure an
// all-default assignment inside a K sweep (FlowConfig.TopK treats 0 as
// "unset").
func (f *Flow) ApplyTopK(b *Built, k int) (*Result, error) {
	if b == nil || b.Tree == nil {
		return nil, errors.New("smartndr: nil built tree")
	}
	sp := f.cfg.Tracer.Start("flow.apply_topk", obs.I("k", k))
	defer sp.End()
	te, lib := f.cfg.Tech, f.cfg.Library
	t := b.Tree.Clone()
	core.AssignTopLevels(t, te, k)
	m, _, err := core.EvaluateTr(t, te, lib, f.cfg.InSlew, f.cfg.Tracer)
	if err != nil {
		return nil, err
	}
	return &Result{Scheme: SchemeTopK, Tree: t, Metrics: m}, nil
}

// RepairSkew balances a result tree to the skew target by wire snaking
// (already integrated in SchemeSmart; exposed for baseline conditioning).
func (f *Flow) RepairSkew(t *Tree, targetSkew float64) error {
	_, err := core.RepairSkew(t, f.cfg.Tech, f.cfg.Library, f.cfg.InSlew, targetSkew, 25)
	return err
}

// RealizeSchedule applies a useful-skew schedule: sink i is balanced to
// arrive `targets[i]` later than the common base (indexed by sink order).
// Schedules should be bank-granular — per-flip-flop offsets inside one
// buffer stage are not realizable with wire alone.
func (f *Flow) RealizeSchedule(t *Tree, targets []float64, tol float64) error {
	for round := 0; round < 3; round++ {
		st, err := core.RepairToTargets(t, f.cfg.Tech, f.cfg.Library, f.cfg.InSlew, targets, tol, 40)
		if err != nil {
			return err
		}
		if st.Converged {
			return nil
		}
	}
	return errors.New("smartndr: schedule not realizable with wire snaking at this tolerance")
}

// AuditEM lists the tree's electromigration width-floor violations under
// the default 45 nm-class current-density rule.
func (f *Flow) AuditEM(t *Tree) ([]core.EMViolation, error) {
	return core.AuditEM(t, f.cfg.Tech, f.cfg.Library, f.cfg.InSlew, core.DefaultEMLimit())
}

// EnforceEM upgrades EM-violating edges to their width floors.
func (f *Flow) EnforceEM(t *Tree) (int, error) {
	return core.EnforceEM(t, f.cfg.Tech, f.cfg.Library, f.cfg.InSlew, core.DefaultEMLimit())
}

// EvaluateCorners analyzes the tree at the standard three corners.
func (f *Flow) EvaluateCorners(t *Tree) (*core.MultiCornerReport, error) {
	return core.EvaluateCorners(t, f.cfg.Tech, f.cfg.Library, f.cfg.InSlew, tech.StandardCorners())
}

// Evaluate recomputes metrics for a tree under this flow's technology.
func (f *Flow) Evaluate(t *Tree) (Metrics, error) {
	m, _, err := core.EvaluateTr(t, f.cfg.Tech, f.cfg.Library, f.cfg.InSlew, f.cfg.Tracer)
	return m, err
}

// Timing exposes the underlying STA result of a tree (arrivals, slews,
// stage loads) for inspection and custom reports.
func (f *Flow) Timing(t *Tree) (*sta.Result, error) {
	return sta.AnalyzeTr(t, f.cfg.Tech, f.cfg.Library, f.cfg.InSlew, nil, f.cfg.Tracer)
}

// MonteCarlo runs process-variation analysis on a tree. When the params
// leave Workers at 0, the flow's configured Workers applies.
func (f *Flow) MonteCarlo(t *Tree, p VariationParams) (*VariationStats, error) {
	if p.Workers == 0 {
		p.Workers = f.cfg.Workers
	}
	return variation.MonteCarloTr(t, f.cfg.Tech, f.cfg.Library, p, f.cfg.Tracer)
}

// MaxTopK returns the deepest meaningful K for TopK sweeps on a built
// tree (K beyond this is equivalent to SchemeBlanket).
func (f *Flow) MaxTopK(b *Built) int { return core.MaxStageLevel(b.Tree) + 1 }

// Benchmark generates a built-in benchmark by name (cns01…cns08).
func Benchmark(name string) (*workload.Benchmark, error) {
	spec, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return workload.Generate(spec)
}

// GenerateBenchmark produces a benchmark from a custom spec.
func GenerateBenchmark(spec BenchSpec) (*workload.Benchmark, error) {
	return workload.Generate(spec)
}

// Suite returns the specs of all built-in benchmarks.
func Suite() []BenchSpec { return workload.CNSSuite() }
