module smartndr

go 1.22
