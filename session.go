package smartndr

import (
	"context"

	"smartndr/internal/core"
	"smartndr/internal/obs"
	"smartndr/internal/sta"
)

// FlowSession is a stateful design session: one built-and-optimized tree
// plus a shared dirty-region STA engine, re-evaluated in place as edits
// arrive. Where RunSpecEdits pays for generation, construction, and
// optimization on every call, a session pays once at open and then each
// delta costs only the dirty region — microseconds on trees where a cold
// run takes milliseconds.
//
// Correctness contract: after ApplyState(edits), Metrics and the content
// address returned by Key(edits) are byte-identical to what a cold
// RunSpecEdits of the same spec/scheme/edits returns. That holds because
// both paths optimize the pristine tree (edits are post-synthesis ECOs),
// the ECO makes tree bytes a pure function of the canonical edit state,
// and the incremental engine is bitwise-exact against the full pass.
//
// A FlowSession is not safe for concurrent use; callers serialize edits
// (the serve layer keeps a single-writer lock per session).
type FlowSession struct {
	flow   *Flow
	spec   BenchSpec
	scheme Scheme
	built  *Built
	result *Result
	eco    *core.ECO
	eng    *sta.Incremental
}

// OpenSession runs the spec cold and wraps the result in a session. The
// returned session starts in the edit-free state; Result() is exactly the
// cold run's result.
func (f *Flow) OpenSession(ctx context.Context, spec BenchSpec, scheme Scheme) (*FlowSession, error) {
	sp := f.cfg.Tracer.Start("flow.open_session", obs.S("scheme", scheme.String()))
	defer sp.End()
	built, res, err := f.RunSpec(ctx, spec, scheme)
	if err != nil {
		return nil, err
	}
	eco, err := core.NewECO(res.Tree, f.cfg.Tech)
	if err != nil {
		return nil, err
	}
	s := &FlowSession{
		flow:   f,
		spec:   spec,
		scheme: scheme,
		built:  built,
		result: res,
		eco:    eco,
		eng:    sta.NewIncremental(f.cfg.Tech, f.cfg.Library),
	}
	// Prime the engine with a full pass now so the first delta already
	// takes the dirty-region path.
	if _, err := s.eng.Analyze(res.Tree, f.cfg.InSlew); err != nil {
		return nil, err
	}
	return s, nil
}

// ApplyState moves the session to the given canonical edit state (an
// absolute state, not an increment — pass the full accumulated edit list)
// and re-evaluates through the dirty-region engine. Passing nil rolls the
// session back to its pristine state. On an edit-validation error
// (errors.Is(err, ErrEdit)) the session state is unchanged.
func (s *FlowSession) ApplyState(ctx context.Context, edits []Edit) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	cfg := s.flow.cfg
	sp := cfg.Tracer.Start("flow.session_delta", obs.I("edits", len(edits)))
	defer sp.End()
	if err := s.eco.SetState(edits, s.eng.Touch); err != nil {
		return Metrics{}, err
	}
	m, _, err := core.EvaluateInc(s.result.Tree, cfg.Tech, cfg.Library,
		s.eco.InSlew(cfg.InSlew), s.eng, cfg.Tracer)
	if err != nil {
		return Metrics{}, err
	}
	s.result.Metrics = m
	return m, nil
}

// ErrEdit tags edit-validation failures from ApplyState and RunSpecEdits.
var ErrEdit = core.ErrEdit

// Key returns the content address the session would have at the given
// canonical edit state — equal to CanonicalKeyEdits(spec, scheme, edits).
func (s *FlowSession) Key(edits []Edit) (string, error) {
	return s.flow.CanonicalKeyEdits(s.spec, s.scheme, edits)
}

// Result returns the session's current result (tree, metrics at the live
// edit state, optimizer stats of the pristine build).
func (s *FlowSession) Result() *Result { return s.result }

// Built returns the session's build record.
func (s *FlowSession) Built() *Built { return s.built }

// Live returns the canonical edit state currently applied.
func (s *FlowSession) Live() []Edit { return s.eco.Live() }

// Nodes returns the tree's node count — the valid range for node-indexed
// edits.
func (s *FlowSession) Nodes() int {
	if s.result == nil || s.result.Tree == nil {
		return 0
	}
	return len(s.result.Tree.Nodes)
}

// EngineStats exposes the dirty-region engine counters (incremental vs
// full vs cached runs) for session telemetry.
func (s *FlowSession) EngineStats() sta.IncStats { return s.eng.Stats() }

// MemoryBytes estimates the session's resident footprint for the store's
// memory accounting: the tree plus the engine's per-node arrays and the
// ECO snapshots. An estimate is enough — eviction needs relative sizes,
// not allocator truth.
func (s *FlowSession) MemoryBytes() int64 {
	if s.result == nil || s.result.Tree == nil {
		return 0
	}
	const perNode = 320 // node + engine arrays + snapshots, rounded up
	const perSink = 96
	return int64(len(s.result.Tree.Nodes))*perNode +
		int64(len(s.result.Tree.Sinks))*perSink
}
