// Package smartndr is a reproduction of "Smart Non-Default Routing for
// Clock Power Reduction" (Kahng, Kang, Lee — DAC 2013): a complete
// clock-tree synthesis substrate plus the paper's contribution, per-edge
// non-default routing-rule (NDR) assignment that recovers the switched
// capacitance a blanket clock NDR wastes, under slew and skew constraints.
//
// The public API is a thin facade over the internal engine:
//
//	bm, _  := smartndr.Benchmark("cns03")
//	flow   := smartndr.NewFlow(nil) // 45 nm defaults
//	built, _ := flow.Build(bm.Sinks, bm.Src)
//	res, _ := flow.Apply(built, smartndr.SchemeSmart)
//	fmt.Println(res.Metrics.Power)
//
// Schemes: SchemeAllDefault (minimum-width wire everywhere), SchemeBlanket
// (the conventional 2W2S-everywhere flow), SchemeTopK (NDR on the top K
// buffer levels), and SchemeSmart (the paper's per-edge assignment with
// integrated skew repair). All schemes are evaluated on clones of the same
// synthesized tree, so comparisons isolate the rule assignment.
//
// The flow is instrumented: set FlowConfig.Tracer (NewTracer with a
// JSONL, tree, or collector sink) to record hierarchical timing spans and
// run counters for every entry point; a nil tracer costs nothing. See
// docs/observability.md.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package smartndr
