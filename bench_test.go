package smartndr

// One testing.B benchmark per reproduced table and figure (see DESIGN.md
// §3 and EXPERIMENTS.md). Each drives the same code path as
// `cmd/experiments -exp <id>`, in quick mode so `go test -bench=.` stays
// minutes-scale; run the command for the full-size tables.

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"smartndr/internal/experiments"
	"smartndr/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := experiments.Options{Out: io.Discard, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1RuleCharacterization(b *testing.B) { benchExperiment(b, "t1") }
func BenchmarkT2MainFlow(b *testing.B)             { benchExperiment(b, "t2") }
func BenchmarkT3Scaling(b *testing.B)              { benchExperiment(b, "t3") }
func BenchmarkF1SlewSweep(b *testing.B)            { benchExperiment(b, "f1") }
func BenchmarkF2DepthProfile(b *testing.B)         { benchExperiment(b, "f2") }
func BenchmarkF3Variation(b *testing.B)            { benchExperiment(b, "f3") }
func BenchmarkF4TopKSweep(b *testing.B)            { benchExperiment(b, "f4") }
func BenchmarkA1Ablation(b *testing.B)             { benchExperiment(b, "a1") }
func BenchmarkA2SkewRepair(b *testing.B)           { benchExperiment(b, "a2") }
func BenchmarkA3ConstructionModel(b *testing.B)    { benchExperiment(b, "a3") }
func BenchmarkT4MultiCorner(b *testing.B)          { benchExperiment(b, "t4") }
func BenchmarkT5Electromigration(b *testing.B)     { benchExperiment(b, "t5") }
func BenchmarkA4OptimalityGap(b *testing.B)        { benchExperiment(b, "a4") }

// Pipeline micro-benchmarks: the pieces a downstream user pays for.

func benchSinks(b *testing.B, n int) []Sink {
	b.Helper()
	bm, err := GenerateBenchmark(BenchSpec{
		Name: "bench", Dist: workload.Uniform, Sinks: n,
		DieX: 4000, DieY: 3200, CapMin: 1e-15, CapMax: 4e-15, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return bm.Sinks
}

func BenchmarkBuild2k(b *testing.B) {
	sinks := benchSinks(b, 2000)
	flow := NewFlow(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Build(sinks, Point{X: 2000, Y: 1600}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSmartApply2k(b *testing.B) {
	sinks := benchSinks(b, 2000)
	flow := NewFlow(nil)
	built, err := flow.Build(sinks, Point{X: 2000, Y: 1600})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Apply(built, SchemeSmart); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTiming2k(b *testing.B) {
	sinks := benchSinks(b, 2000)
	flow := NewFlow(nil)
	built, err := flow.Build(sinks, Point{X: 2000, Y: 1600})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Timing(built.Tree); err != nil {
			b.Fatal(err)
		}
	}
}

// Tracer-overhead benchmarks: BenchmarkFlowSmart is the untraced
// baseline, the NopTracer variant proves a disabled tracer is free
// (NewTracer(nil) is a nil tracer — every instrumentation point is one
// nil check), and the Traced variant prices a live in-memory sink.

func benchFlowSmart(b *testing.B, flow *Flow) {
	b.Helper()
	sinks := benchSinks(b, 1000)
	built, err := flow.Build(sinks, Point{X: 2000, Y: 1600})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Apply(built, SchemeSmart); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowSmart(b *testing.B) {
	benchFlowSmart(b, NewFlow(nil))
}

func BenchmarkFlowSmartNopTracer(b *testing.B) {
	benchFlowSmart(b, NewFlow(&FlowConfig{Tracer: NewTracer(nil)}))
}

func BenchmarkFlowSmartTraced(b *testing.B) {
	col := NewTraceCollector()
	benchFlowSmart(b, NewFlow(&FlowConfig{Tracer: NewTracer(col)}))
}

// BenchmarkFlowSmartHistogram prices full telemetry aggregation: every
// span lands in a per-path latency histogram (the smartndrd /metricsz
// path) instead of an unbounded event buffer.
func BenchmarkFlowSmartHistogram(b *testing.B) {
	benchFlowSmart(b, NewFlow(&FlowConfig{Tracer: NewTracer(NewSpanObserver(nil))}))
}

// Monte Carlo benchmarks: trial-scaling across worker counts plus the
// allocation profile (run with -benchmem). Results are identical at any
// worker count — the determinism test proves it — so these measure pure
// throughput. BenchmarkMonteCarlo100 (the PR-1 name) is kept as the
// 1-worker anchor for history.

func benchMonteCarlo(b *testing.B, workers int) {
	b.Helper()
	sinks := benchSinks(b, 500)
	flow := NewFlow(nil)
	built, err := flow.Build(sinks, Point{X: 2000, Y: 1600})
	if err != nil {
		b.Fatal(err)
	}
	p := VariationParams{
		WidthSigma: 0.004, BufSigma: 0.03, SpatialFrac: 0.6,
		Samples: 100, Seed: 3, Workers: workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.MonteCarlo(built.Tree, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarlo100(b *testing.B)      { benchMonteCarlo(b, 1) }
func BenchmarkMonteCarlo1Workers(b *testing.B) { benchMonteCarlo(b, 1) }
func BenchmarkMonteCarlo4Workers(b *testing.B) { benchMonteCarlo(b, 4) }
func BenchmarkMonteCarlo8Workers(b *testing.B) { benchMonteCarlo(b, 8) }
func BenchmarkMonteCarloNWorkers(b *testing.B) { benchMonteCarlo(b, runtime.GOMAXPROCS(0)) }

// Scale benchmarks drive the hierarchical flow end to end — sharded
// benchmark generation, geometric partitioning, per-region DME +
// smart-NDR builds on the worker pool, top-tree embed, stitch, and the
// final global skew balance. Both skip under -short so bench-smoke
// stays seconds-scale; `make bench-scale` (CI) runs the 100K point
// once, and BENCH_PR7.json commits it. The million-sink probe
// additionally gates behind SMARTNDR_BENCH_1M=1 — it is the headroom
// proof, not a routine datapoint.

func benchFlowSmartScale(b *testing.B, n int) {
	b.Helper()
	if testing.Short() {
		b.Skipf("%d-sink scale benchmark skipped in -short mode", n)
	}
	spec := workload.Scale(fmt.Sprintf("scale%dk", n/1000), n, 7)
	flow := NewFlow(&FlowConfig{Hier: HierConfig{MaxRegionSinks: 2048}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		built, _, err := flow.RunSpec(context.Background(), spec, SchemeSmart)
		if err != nil {
			b.Fatal(err)
		}
		if built.NumClusters < 2 {
			b.Fatalf("scale run built %d regions — hierarchical path not taken", built.NumClusters)
		}
	}
}

func BenchmarkFlowSmart100K(b *testing.B) { benchFlowSmartScale(b, 100_000) }

func BenchmarkFlowSmart1M(b *testing.B) {
	if os.Getenv("SMARTNDR_BENCH_1M") == "" {
		b.Skip("set SMARTNDR_BENCH_1M=1 to run the million-sink benchmark")
	}
	benchFlowSmartScale(b, 1_000_000)
}
